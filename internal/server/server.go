package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"critload/internal/checkpoint"
	"critload/internal/dataflow"
	"critload/internal/families"
	"critload/internal/jobs"
	"critload/internal/obsv"
	"critload/internal/ptx"
	"critload/internal/workloads"
)

// maxRequestBytes bounds every request body; PTX sources and job specs are
// small, so anything larger is a client error, not a workload.
const maxRequestBytes = 4 << 20

// retryAfterHint is the Retry-After value (in seconds) sent with queue-full
// 429s and shutting-down 503s. One second matches the service's drain rate:
// a full queue at typical job wall times frees slots well within it, and a
// smaller hint cannot be expressed in the header's integer-seconds form.
const retryAfterHint = "1"

// Server is the critloadd HTTP API.
//
//	POST   /v1/classify        classify a PTX source's global loads (synchronous)
//	POST   /v1/classify/batch  classify many PTX sources in one request
//	POST   /v1/ptx           validate + classify a raw .ptx program (422 diagnostics)
//	POST   /v1/jobs          submit a functional or timing simulation job
//	GET    /v1/jobs/{id}     poll a job (optionally ?wait_ms=N)
//	DELETE /v1/jobs/{id}     cancel a job
//	GET    /v1/workloads     list the Table I workloads and parameterized families
//	GET    /healthz          liveness
//	GET    /metrics          Prometheus text exposition
//
// /v1/classify and /v1/jobs also accept a {"family": {...}} spec in place of
// PTX source / a workload name: a parameterized kernel family (see
// internal/families) resolved to its canonical workload name server-side.
//
// Every request flows through the observability chain: request-ID
// injection (echoed on X-Request-ID), in-flight and per-endpoint latency
// instrumentation, structured access logging, and panic recovery — a
// crashing handler answers 500 and the daemon keeps serving.
type Server struct {
	mgr     *jobs.Manager
	mux     *http.ServeMux
	routes  *routeTable
	handler http.Handler
	log     *slog.Logger
	metrics *metricsSet
	ckpts   *checkpoint.Store
	start   time.Time
}

// Option customises a Server at construction.
type Option func(*Server)

// WithLogger routes access logs and panic reports to l; the default logger
// discards them, keeping library users (and tests) quiet.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithCheckpoints exposes a checkpoint store's effectiveness counters on
// /metrics (critloadd_checkpoint_*). Pass the same store the runner uses.
func WithCheckpoints(st *checkpoint.Store) Option {
	return func(s *Server) { s.ckpts = st }
}

// New wires the API around a job manager. It installs itself as the
// manager's execution observer to feed the job wall-time histograms.
func New(mgr *jobs.Manager, opts ...Option) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), routes: newRouteTable(),
		log: obsv.NopLogger(), start: time.Now()}
	for _, opt := range opts {
		opt(s)
	}
	// Routes go through s.route so the metrics endpoint-label set below is
	// derived from the registrations — a route added here is instrumented
	// under its own label automatically, never bucketed as "other".
	s.route("POST /v1/classify", s.handleClassify)
	s.route("POST /v1/classify/batch", s.handleClassifyBatch)
	s.route("POST /v1/ptx", s.handlePTX)
	s.route("POST /v1/jobs", s.handleSubmit)
	s.route("GET /v1/jobs/{id}", s.handleGet)
	s.route("DELETE /v1/jobs/{id}", s.handleCancel)
	s.route("GET /v1/workloads", s.handleWorkloads)
	s.route("GET /healthz", s.handleHealth)
	s.route("GET /metrics", s.handleMetrics)
	s.metrics = newMetricsSet(mgr, s.ckpts, s.start, s.routes.labels())
	s.handler = obsv.Chain(s.mux,
		obsv.RequestID(),
		obsv.Instrument(s.routes.label, s.metrics.httpInFlight, s.metrics.observeRequest),
		obsv.AccessLog(s.log),
		obsv.Recover(s.log, s.metrics.httpPanics.Inc),
	)
	return s
}

// route registers a handler on the mux and records its endpoint label for
// the metrics layer.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	s.routes.add(pattern)
	s.mux.HandleFunc(pattern, h)
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	s.handler.ServeHTTP(w, r)
}

// writeJSON emits one JSON response; encoding errors at this point can only
// be I/O failures on a hung client, so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// bodyErrorStatus distinguishes an oversized body — MaxBytesReader's error,
// owed a 413 — from every other read/decode failure, which is a 400.
func bodyErrorStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// ---------------------------------------------------------------------------
// POST /v1/classify

// classifyRequest carries a PTX-subset source or a family spec (exactly one
// of the two). Clients may also send the raw source directly with a text/*
// content type.
type classifyRequest struct {
	PTX    string         `json:"ptx,omitempty"`
	Family *families.Spec `json:"family,omitempty"`
}

// RootJSON is one primitive contributor to a load address.
type RootJSON struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
}

// LoadJSON is the classification of one global load instruction.
type LoadJSON struct {
	PC    string     `json:"pc"`
	Inst  string     `json:"inst"`
	Class string     `json:"class"`
	Roots []RootJSON `json:"roots"`
}

// KernelJSON is one kernel's classification result.
type KernelJSON struct {
	Name             string     `json:"name"`
	Deterministic    int        `json:"deterministic"`
	NonDeterministic int        `json:"non_deterministic"`
	Loads            []LoadJSON `json:"loads"`
}

// ClassifyResponse is the full program classification.
type ClassifyResponse struct {
	Kernels []KernelJSON `json:"kernels"`
}

// isJSONBody decides whether a classify body is the JSON envelope or raw
// PTX. An explicit Content-Type is parsed as a proper media type and
// trusted: application/json, text/json and any +json suffix mean JSON,
// anything else (text/plain, application/octet-stream, ...) means raw PTX.
// With no Content-Type — or one mime.ParseMediaType rejects — the body is
// sniffed: PTX source never opens with '{', so a leading brace is JSON.
// The old strings.Contains(ct, "json") check sent a headerless JSON body
// down the raw-PTX path, where it died with a misleading parse error.
func isJSONBody(ct string, body []byte) bool {
	if ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			return mt == "application/json" || mt == "text/json" ||
				strings.HasSuffix(mt, "+json")
		}
	}
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	return len(trimmed) > 0 && trimmed[0] == '{'
}

// classifyKernel runs the classifier over one parsed kernel.
func classifyKernel(k *ptx.Kernel) KernelJSON {
	res := dataflow.Classify(k)
	det, nondet := res.Counts()
	kj := KernelJSON{
		Name: k.Name, Deterministic: det, NonDeterministic: nondet,
		Loads: []LoadJSON{},
	}
	for _, l := range res.Loads {
		lj := LoadJSON{
			PC:    fmt.Sprintf("0x%03x", l.PC),
			Inst:  k.Insts[l.InstIndex].String(),
			Class: l.Class.String(),
			Roots: []RootJSON{},
		}
		for _, root := range l.Roots {
			lj.Roots = append(lj.Roots, RootJSON{Kind: root.Kind.String(), Name: root.Name})
		}
		kj.Loads = append(kj.Loads, lj)
	}
	return kj
}

// classifyProgram classifies every kernel of a parsed program.
func classifyProgram(prog *ptx.Program) *ClassifyResponse {
	resp := &ClassifyResponse{Kernels: []KernelJSON{}}
	for _, k := range prog.Kernels {
		resp.Kernels = append(resp.Kernels, classifyKernel(k))
	}
	return resp
}

// classifySource runs the parse-and-classify pipeline on one source,
// reporting failures as the HTTP status the caller should relay: 400 for an
// empty source, 422 for source the parser rejects. It is the shared core of
// the single and batch classify handlers.
func classifySource(src string) (*ClassifyResponse, int, error) {
	if strings.TrimSpace(src) == "" {
		return nil, http.StatusBadRequest, errors.New("empty PTX source")
	}
	prog, err := ptx.Parse(src)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("parsing PTX: %w", err)
	}
	return classifyProgram(prog), http.StatusOK, nil
}

// classifyFamily lowers a family spec to its labeled kernel and classifies
// it. Spec problems (unknown family, out-of-range knob) are client errors.
func classifyFamily(spec *families.Spec) (*ClassifyResponse, int, error) {
	c, err := spec.Build()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	return classifyProgram(&ptx.Program{Kernels: []*ptx.Kernel{c.Kernel}}), http.StatusOK, nil
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, bodyErrorStatus(err), "reading body: %v", err)
		return
	}
	src := string(body)
	if isJSONBody(r.Header.Get("Content-Type"), body) {
		var req classifyRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if req.Family != nil {
			if strings.TrimSpace(req.PTX) != "" {
				writeError(w, http.StatusBadRequest, "ptx and family are mutually exclusive")
				return
			}
			resp, status, err := classifyFamily(req.Family)
			if err != nil {
				writeError(w, status, "%v", err)
				return
			}
			writeJSON(w, http.StatusOK, resp)
			return
		}
		src = req.PTX
	}
	resp, status, err := classifySource(src)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// POST /v1/classify/batch

// BatchItemJSON is one kernel source in a batch classify request.
type BatchItemJSON struct {
	// ID is an optional client-chosen correlation handle; responses preserve
	// request order, so it may be left empty. Non-empty IDs must be unique
	// within the batch.
	ID  string `json:"id,omitempty"`
	PTX string `json:"ptx"`
}

// batchClassifyRequest is the batch envelope.
type batchClassifyRequest struct {
	Items []BatchItemJSON `json:"items"`
}

// BatchResultJSON is one item's outcome. Status mirrors what the single
// endpoint would have answered for the same source (200, 400 or 422), so a
// bad kernel fails its slot without failing the batch.
type BatchResultJSON struct {
	ID     string            `json:"id,omitempty"`
	Status int               `json:"status"`
	Error  string            `json:"error,omitempty"`
	Result *ClassifyResponse `json:"result,omitempty"`
}

// BatchClassifyResponse is the full batch outcome, items in request order.
type BatchClassifyResponse struct {
	Items     []BatchResultJSON `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

func (s *Server) handleClassifyBatch(w http.ResponseWriter, r *http.Request) {
	var req batchClassifyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), "decoding request: %v", err)
		return
	}
	if err := jobs.ValidateBatchSize(len(req.Items)); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ids := make([]string, len(req.Items))
	for i, it := range req.Items {
		ids[i] = it.ID
	}
	if err := jobs.ValidateBatchIDs(ids); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := BatchClassifyResponse{Items: make([]BatchResultJSON, 0, len(req.Items))}
	for _, it := range req.Items {
		out := BatchResultJSON{ID: it.ID}
		res, status, err := classifySource(it.PTX)
		out.Status = status
		if err != nil {
			out.Error = err.Error()
			resp.Failed++
		} else {
			out.Result = res
			resp.Succeeded++
		}
		resp.Items = append(resp.Items, out)
	}
	s.metrics.observeBatch(len(resp.Items), resp.Failed)
	writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------------
// POST /v1/jobs, GET/DELETE /v1/jobs/{id}

// jobRequest is the submission payload; it mirrors jobs.Spec with a
// millisecond timeout for JSON ergonomics. Exactly one of Workload and
// Family selects what to run: a family spec is resolved to its canonical
// workload name ("family:<name>?<knobs>") server-side, so caching,
// deduplication, checkpoint prefixes and the durable journal all see family
// jobs through the same string identity as Table I jobs.
type jobRequest struct {
	Workload      string         `json:"workload,omitempty"`
	Family        *families.Spec `json:"family,omitempty"`
	Mode          string         `json:"mode"`
	Size          int            `json:"size"`
	Seed          int64          `json:"seed"`
	MaxWarpInsts  uint64         `json:"max_warp_insts"`
	MaxCycles     int64          `json:"max_cycles"`
	TimeoutMillis int64          `json:"timeout_ms"`
	// ReuseCheckpoints opts a timing job into the daemon's checkpoint store
	// (ignored when critloadd runs without one). Results are byte-identical
	// either way; only wall time changes.
	ReuseCheckpoints bool `json:"reuse_checkpoints"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, bodyErrorStatus(err), "decoding request: %v", err)
		return
	}
	if req.Family != nil {
		if req.Workload != "" {
			writeError(w, http.StatusBadRequest, "workload and family are mutually exclusive")
			return
		}
		canonical, err := req.Family.CanonicalName()
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		req.Workload = canonical
	}
	if _, ok := workloads.Get(req.Workload); !ok {
		writeError(w, http.StatusBadRequest, "unknown workload %q", req.Workload)
		return
	}
	spec := jobs.Spec{
		Workload:         req.Workload,
		Mode:             jobs.Mode(req.Mode),
		Size:             req.Size,
		Seed:             req.Seed,
		MaxWarpInsts:     req.MaxWarpInsts,
		MaxCycles:        req.MaxCycles,
		Timeout:          time.Duration(req.TimeoutMillis) * time.Millisecond,
		ReuseCheckpoints: req.ReuseCheckpoints,
	}
	info, err := s.mgr.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, info)
	case errors.Is(err, jobs.ErrQueueFull):
		// Push-back responses carry Retry-After so well-behaved clients
		// (pkg/client among them) know how long to hold off instead of
		// guessing a backoff against a saturated queue.
		w.Header().Set("Retry-After", retryAfterHint)
		writeError(w, http.StatusTooManyRequests, "queue full")
	case errors.Is(err, jobs.ErrClosed):
		w.Header().Set("Retry-After", retryAfterHint)
		writeError(w, http.StatusServiceUnavailable, "shutting down")
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if waitMS := r.URL.Query().Get("wait_ms"); waitMS != "" {
		ms, err := strconv.ParseInt(waitMS, 10, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "bad wait_ms %q", waitMS)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), time.Duration(ms)*time.Millisecond)
		defer cancel()
		// A wait that times out is not an error: the client gets the
		// job's current (non-terminal) snapshot and polls again.
		info, err := s.mgr.Wait(ctx, id)
		if errors.Is(err, jobs.ErrNotFound) {
			writeError(w, http.StatusNotFound, "no job %q", id)
			return
		}
		writeJSON(w, http.StatusOK, info)
		return
	}
	info, err := s.mgr.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	info, err := s.mgr.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// ---------------------------------------------------------------------------
// GET /v1/workloads, /healthz, /metrics

// workloadJSON is one built-in benchmark listing.
type workloadJSON struct {
	Name        string `json:"name"`
	Category    string `json:"category"`
	Description string `json:"description"`
	DataSet     string `json:"data_set"`
}

// familyJSON is one parameterized family listing: knob schemas with ranges
// and defaults, plus the canonical all-defaults instance name as a template.
type familyJSON struct {
	Name        string          `json:"name"`
	Description string          `json:"description"`
	Knobs       []families.Knob `json:"knobs"`
	Example     string          `json:"example"`
}

// workloadsResponse is the /v1/workloads catalog: the fixed Table I
// benchmarks plus the parameterized families.
type workloadsResponse struct {
	Workloads []workloadJSON `json:"workloads"`
	Families  []familyJSON   `json:"families"`
}

func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	resp := workloadsResponse{Workloads: []workloadJSON{}, Families: []familyJSON{}}
	for _, wl := range workloads.All() {
		resp.Workloads = append(resp.Workloads, workloadJSON{
			Name: wl.Name, Category: wl.Category.String(),
			Description: wl.Description, DataSet: wl.DataSet,
		})
	}
	for _, f := range families.List() {
		example, err := (&families.Spec{Name: f.Name}).CanonicalName()
		if err != nil {
			// Defaults are validated by the family's own tests; a failure
			// here is a registration bug, not a client error.
			continue
		}
		resp.Families = append(resp.Families, familyJSON{
			Name: f.Name, Description: f.Description, Knobs: f.Knobs, Example: example,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// healthJSON is the /healthz body. Recovery is present only on daemons
// running the durable tier: what the startup journal replay found, so an
// operator restarting a crashed daemon can see at a glance how many jobs
// were carried across and whether the journal had a torn tail.
type healthJSON struct {
	Status   string             `json:"status"`
	Recovery *jobs.RecoveryInfo `json:"recovery,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	body := healthJSON{Status: "ok"}
	if rec := s.mgr.Recovery(); rec.Enabled {
		body.Recovery = &rec
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w)
}
