package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
)

// newService spins up the HTTP API over a manager with the given runner and
// worker count, tearing both down with the test.
func newService(t *testing.T, runner jobs.Runner, workers int) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.NewManager(jobs.Config{Workers: workers, Runner: runner})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts, mgr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
}

func TestMetrics(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, metric := range []string{
		"critloadd_jobs_submitted_total", "critloadd_jobs_completed_total",
		"critloadd_jobs_failed_total", "critloadd_jobs_cancelled_total",
		"critloadd_cache_hits_total", "critloadd_cache_misses_total",
		"critloadd_queue_depth", "critloadd_jobs_running",
		"critloadd_job_wall_seconds_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %s:\n%s", metric, text)
		}
	}
}

func TestWorkloadsListing(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var list []map[string]string
	if code := getJSON(t, ts.URL+"/v1/workloads", &list); code != http.StatusOK {
		t.Fatalf("workloads = %d, want 200", code)
	}
	if len(list) != 15 {
		t.Fatalf("listed %d workloads, want the paper's 15", len(list))
	}
}

const classifySrc = `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`

func TestClassifyJSONBody(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var resp server.ClassifyResponse
	code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": classifySrc}, &resp)
	if code != http.StatusOK {
		t.Fatalf("classify = %d, want 200", code)
	}
	if len(resp.Kernels) != 1 || resp.Kernels[0].Name != "lin" {
		t.Fatalf("kernels = %+v", resp.Kernels)
	}
	k := resp.Kernels[0]
	if k.Deterministic != 1 || k.NonDeterministic != 0 || len(k.Loads) != 1 {
		t.Fatalf("classification = %+v, want one deterministic load", k)
	}
	if k.Loads[0].Class != "deterministic" {
		t.Fatalf("load class = %q", k.Loads[0].Class)
	}
	var haveParamRoot bool
	for _, r := range k.Loads[0].Roots {
		if r.Kind == "param" && r.Name == "a" {
			haveParamRoot = true
		}
	}
	if !haveParamRoot {
		t.Fatalf("roots = %+v, want param 'a'", k.Loads[0].Roots)
	}
}

func TestClassifyRawBody(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader(classifySrc))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw classify = %d, want 200", resp.StatusCode)
	}
}

func TestClassifyErrors(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": ""}, nil); code != http.StatusBadRequest {
		t.Errorf("empty source = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": "not ptx at all ;"}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("junk source = %d, want 422", code)
	}
}

// TestJobRoundTrip drives the acceptance path end to end over HTTP: submit a
// timing job, poll it to completion, and read the Table III counters and the
// stats summary out of the result JSON.
func TestJobRoundTrip(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 2)
	var submitted jobs.JobInfo
	code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "2mm", "mode": "timing", "size": 32, "seed": 1,
		"max_warp_insts": 20000,
	}, &submitted)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if submitted.ID == "" || submitted.State.Terminal() {
		t.Fatalf("submitted = %+v, want a live job", submitted)
	}

	var final struct {
		jobs.JobInfo
		Result server.RunResult `json:"result"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?wait_ms=2000", ts.URL, submitted.ID), &final)
		if code != http.StatusOK {
			t.Fatalf("poll = %d, want 200", code)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.State)
		}
	}
	if final.State != jobs.StateDone {
		t.Fatalf("final state = %q (error %q), want done", final.State, final.Error)
	}
	if final.Result.Cycles <= 0 {
		t.Errorf("cycles = %d, want > 0", final.Result.Cycles)
	}
	if got := final.Result.Counters["gld_request"]; got == 0 {
		t.Errorf("gld_request = 0, want > 0")
	}
	if final.Result.Summary.WarpInsts == 0 {
		t.Errorf("summary warp_insts = 0, want > 0")
	}
	if final.Result.Workload != "2mm" || final.Result.Mode != jobs.ModeTiming {
		t.Errorf("result identity = %s/%s", final.Result.Workload, final.Result.Mode)
	}
}

// TestConcurrentJobsSingleExecution is the dedup acceptance test: four
// concurrent submissions of the same workload must produce exactly one
// simulator execution, the rest served by singleflight or the result cache.
func TestConcurrentJobsSingleExecution(t *testing.T) {
	ts, mgr := newService(t, server.SimRunner(), 4)
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			var info jobs.JobInfo
			code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
				"workload": "2mm", "mode": "functional", "size": 64, "seed": 9,
			}, &info)
			if code != http.StatusAccepted {
				t.Errorf("submit %d = %d, want 202", i, code)
				return
			}
			ids[i] = info.ID
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		final, err := mgr.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("job %s = %q (error %q), want done", id, final.State, final.Error)
		}
	}
	if st := mgr.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want exactly 1 (stats %+v)", st.Executions, st)
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "nope", "mode": "timing",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown workload = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "warp-speed",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown mode = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "timing", "bogus_field": 1,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
}

func TestGetUnknownJob(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := getJSON(t, ts.URL+"/v1/jobs/j-missing", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

func TestCancelJobOverHTTP(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := func(ctx context.Context, spec jobs.Spec) (any, error) {
		select {
		case <-block:
			return "unreachable", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts, _ := newService(t, runner, 1)
	var info jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "functional",
	}, &info); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer resp.Body.Close()
	var cancelled jobs.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || cancelled.State != jobs.StateCancelled {
		t.Fatalf("cancel = %d %+v, want 200 cancelled", resp.StatusCode, cancelled)
	}
}
