package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"critload/internal/families"
	"critload/internal/jobs"
	"critload/internal/server"
)

// newService spins up the HTTP API over a manager with the given runner and
// worker count, tearing both down with the test.
func newService(t *testing.T, runner jobs.Runner, workers int) (*httptest.Server, *jobs.Manager) {
	t.Helper()
	mgr, err := jobs.NewManager(jobs.Config{Workers: workers, Runner: runner})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts, mgr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthz(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body = %v", body)
	}
}

func TestMetrics(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	text := string(b)
	for _, metric := range []string{
		"critloadd_jobs_submitted_total", "critloadd_jobs_completed_total",
		"critloadd_jobs_failed_total", "critloadd_jobs_cancelled_total",
		"critloadd_cache_hits_total", "critloadd_cache_misses_total",
		"critloadd_queue_depth", "critloadd_jobs_running",
		"critloadd_job_wall_seconds_total",
	} {
		if !strings.Contains(text, metric) {
			t.Errorf("metrics output missing %s:\n%s", metric, text)
		}
	}
}

func TestWorkloadsListing(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var catalog struct {
		Workloads []map[string]string `json:"workloads"`
		Families  []struct {
			Name    string           `json:"name"`
			Knobs   []map[string]any `json:"knobs"`
			Example string           `json:"example"`
		} `json:"families"`
	}
	if code := getJSON(t, ts.URL+"/v1/workloads", &catalog); code != http.StatusOK {
		t.Fatalf("workloads = %d, want 200", code)
	}
	if len(catalog.Workloads) != 15 {
		t.Fatalf("listed %d workloads, want the paper's 15", len(catalog.Workloads))
	}
	if len(catalog.Families) != len(families.Names()) {
		t.Fatalf("listed %d families, want %d", len(catalog.Families), len(families.Names()))
	}
	for _, f := range catalog.Families {
		if len(f.Knobs) == 0 {
			t.Errorf("family %s listed without knob schema", f.Name)
		}
		if !strings.HasPrefix(f.Example, "family:"+f.Name+"?") {
			t.Errorf("family %s example %q is not a canonical instance name", f.Name, f.Example)
		}
	}
}

const classifySrc = `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`

func TestClassifyJSONBody(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	var resp server.ClassifyResponse
	code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": classifySrc}, &resp)
	if code != http.StatusOK {
		t.Fatalf("classify = %d, want 200", code)
	}
	if len(resp.Kernels) != 1 || resp.Kernels[0].Name != "lin" {
		t.Fatalf("kernels = %+v", resp.Kernels)
	}
	k := resp.Kernels[0]
	if k.Deterministic != 1 || k.NonDeterministic != 0 || len(k.Loads) != 1 {
		t.Fatalf("classification = %+v, want one deterministic load", k)
	}
	if k.Loads[0].Class != "deterministic" {
		t.Fatalf("load class = %q", k.Loads[0].Class)
	}
	var haveParamRoot bool
	for _, r := range k.Loads[0].Roots {
		if r.Kind == "param" && r.Name == "a" {
			haveParamRoot = true
		}
	}
	if !haveParamRoot {
		t.Fatalf("roots = %+v, want param 'a'", k.Loads[0].Roots)
	}
}

func TestClassifyRawBody(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	resp, err := http.Post(ts.URL+"/v1/classify", "text/plain", strings.NewReader(classifySrc))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("raw classify = %d, want 200", resp.StatusCode)
	}
}

func TestClassifyErrors(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": ""}, nil); code != http.StatusBadRequest {
		t.Errorf("empty source = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": "not ptx at all ;"}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("junk source = %d, want 422", code)
	}
}

// TestJobRoundTrip drives the acceptance path end to end over HTTP: submit a
// timing job, poll it to completion, and read the Table III counters and the
// stats summary out of the result JSON.
func TestJobRoundTrip(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 2)
	var submitted jobs.JobInfo
	code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "2mm", "mode": "timing", "size": 32, "seed": 1,
		"max_warp_insts": 20000,
	}, &submitted)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	if submitted.ID == "" || submitted.State.Terminal() {
		t.Fatalf("submitted = %+v, want a live job", submitted)
	}

	var final struct {
		jobs.JobInfo
		Result server.RunResult `json:"result"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?wait_ms=2000", ts.URL, submitted.ID), &final)
		if code != http.StatusOK {
			t.Fatalf("poll = %d, want 200", code)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.State)
		}
	}
	if final.State != jobs.StateDone {
		t.Fatalf("final state = %q (error %q), want done", final.State, final.Error)
	}
	if final.Result.Cycles <= 0 {
		t.Errorf("cycles = %d, want > 0", final.Result.Cycles)
	}
	if got := final.Result.Counters["gld_request"]; got == 0 {
		t.Errorf("gld_request = 0, want > 0")
	}
	if final.Result.Summary.WarpInsts == 0 {
		t.Errorf("summary warp_insts = 0, want > 0")
	}
	if final.Result.Workload != "2mm" || final.Result.Mode != jobs.ModeTiming {
		t.Errorf("result identity = %s/%s", final.Result.Workload, final.Result.Mode)
	}
}

// TestConcurrentJobsSingleExecution is the dedup acceptance test: four
// concurrent submissions of the same workload must produce exactly one
// simulator execution, the rest served by singleflight or the result cache.
func TestConcurrentJobsSingleExecution(t *testing.T) {
	ts, mgr := newService(t, server.SimRunner(), 4)
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			var info jobs.JobInfo
			code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
				"workload": "2mm", "mode": "functional", "size": 64, "seed": 9,
			}, &info)
			if code != http.StatusAccepted {
				t.Errorf("submit %d = %d, want 202", i, code)
				return
			}
			ids[i] = info.ID
		}()
	}
	wg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range ids {
		if id == "" {
			t.Fatal("missing job id")
		}
		final, err := mgr.Wait(ctx, id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if final.State != jobs.StateDone {
			t.Fatalf("job %s = %q (error %q), want done", id, final.State, final.Error)
		}
	}
	if st := mgr.Stats(); st.Executions != 1 {
		t.Fatalf("executions = %d, want exactly 1 (stats %+v)", st.Executions, st)
	}
}

// TestPanickingJobLeavesDaemonAlive is the headline acceptance test: a
// simulation that panics mid-run becomes a failed job carrying the panic
// message and stack, while /healthz and the jobs API keep answering.
func TestPanickingJobLeavesDaemonAlive(t *testing.T) {
	runner := func(ctx context.Context, spec jobs.Spec) (any, error) {
		if spec.Workload == "bfs" {
			panic("cache: unaligned block address 0x3")
		}
		return "ok", nil
	}
	ts, _ := newService(t, runner, 1)

	var info jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "functional",
	}, &info); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	var final jobs.JobInfo
	deadline := time.Now().Add(30 * time.Second)
	for {
		if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?wait_ms=1000", ts.URL, info.ID), &final); code != http.StatusOK {
			t.Fatalf("poll = %d, want 200", code)
		}
		if final.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", final.State)
		}
	}
	if final.State != jobs.StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if !strings.Contains(final.Error, "unaligned block address") ||
		!strings.Contains(final.Error, "goroutine") {
		t.Fatalf("error %q missing panic message or stack", final.Error)
	}

	// The daemon survived: liveness, job listing and a fresh job all work.
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz after panic = %d, want 200", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+info.ID, nil); code != http.StatusOK {
		t.Fatalf("job fetch after panic = %d, want 200", code)
	}
	var ok jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "sssp", "mode": "functional",
	}, &ok); code != http.StatusAccepted {
		t.Fatalf("submit after panic = %d, want 202", code)
	}
	if code := getJSON(t, fmt.Sprintf("%s/v1/jobs/%s?wait_ms=10000", ts.URL, ok.ID), &final); code != http.StatusOK || final.State != jobs.StateDone {
		t.Fatalf("job after panic = %d/%q, want 200/done", code, final.State)
	}

	// And the panic is on the dashboard.
	body := scrapeMetrics(t, ts.URL)
	if !strings.Contains(body, "critloadd_job_panics_total 1") {
		t.Errorf("metrics missing recovered panic count:\n%s", grepMetrics(body, "panics"))
	}
}

// TestRequestEntityTooLarge checks that MaxBytesReader overruns map to 413
// on both body-consuming endpoints, not a generic 400.
func TestRequestEntityTooLarge(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	// Well-formed JSON either way, so the size limit — not a syntax error —
	// is what trips first.
	big := []byte(`{"workload":"` + strings.Repeat("x", 4<<20+1) + `"}`)
	for _, path := range []string{"/v1/classify", "/v1/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(big))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s oversized body = %d, want 413", path, resp.StatusCode)
		}
	}
}

// TestRequestIDEcho checks ID generation and client passthrough.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no request ID generated")
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("inbound request ID echoed as %q, want trace-me-42", got)
	}
}

func scrapeMetrics(t *testing.T, baseURL string) string {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading metrics: %v", err)
	}
	return string(b)
}

// grepMetrics trims a scrape to the lines matching substr, for readable
// failure messages.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// sampleLine matches one exposition sample: name, optional labels, value.
var sampleLine = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (-?\d+(\.\d+)?([eE][+-]?\d+)?|[+-]?Inf|NaN)$`)

// validatePrometheus is the conformance check: every sample line must parse,
// and every sample's family must have been declared with # HELP and # TYPE
// before its first sample (histogram samples resolve through their
// _bucket/_sum/_count suffixes).
func validatePrometheus(t *testing.T, body string) {
	t.Helper()
	help := map[string]bool{}
	typed := map[string]string{}
	family := func(name string) (string, bool) {
		if _, ok := typed[name]; ok {
			return name, true
		}
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base, found := strings.CutSuffix(name, suffix)
			if found && typed[base] == "histogram" {
				return base, true
			}
		}
		return "", false
	}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("malformed HELP line %q", line)
			}
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, found := strings.Cut(rest, " ")
			if !found {
				t.Errorf("malformed TYPE line %q", line)
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Errorf("unknown metric type in %q", line)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("unparseable sample line %q", line)
			continue
		}
		fam, ok := family(m[1])
		if !ok {
			t.Errorf("sample %q has no # TYPE declaration", m[1])
			continue
		}
		if !help[fam] {
			t.Errorf("family %q has no # HELP line", fam)
		}
	}
}

// TestMetricsConformance exercises the API, then validates the full scrape
// and the presence of annotated latency histograms for the classify and
// jobs endpoints.
func TestMetricsConformance(t *testing.T) {
	ts, mgr := newService(t, server.SimRunner(), 2)

	// Generate traffic: one classify, one finished job, one 404.
	if code := postJSON(t, ts.URL+"/v1/classify", map[string]string{"ptx": classifySrc}, nil); code != http.StatusOK {
		t.Fatalf("classify = %d", code)
	}
	var info jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "2mm", "mode": "functional", "size": 32, "seed": 1,
	}, &info); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := mgr.Wait(ctx, info.ID); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	getJSON(t, ts.URL+"/v1/jobs/"+info.ID, nil)
	getJSON(t, ts.URL+"/v1/jobs/j-missing", nil)

	body := scrapeMetrics(t, ts.URL)
	validatePrometheus(t, body)

	for _, want := range []string{
		"# TYPE critloadd_jobs_submitted_total counter",
		"# TYPE critloadd_http_request_seconds histogram",
		"# TYPE critloadd_job_wall_seconds histogram",
		`critloadd_http_request_seconds_bucket{endpoint="/v1/classify",le="+Inf"} 1`,
		`critloadd_http_request_seconds_bucket{endpoint="/v1/jobs",le="+Inf"} 1`,
		`critloadd_http_request_seconds_count{endpoint="/v1/classify"} 1`,
		`critloadd_job_wall_seconds_count{mode="functional"} 1`,
		`critloadd_http_requests_total{code="404",endpoint="/v1/jobs/{id}"} 1`,
		"critloadd_executions_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q; related lines:\n%s", want,
				grepMetrics(body, strings.SplitN(want, "{", 2)[0]))
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "nope", "mode": "timing",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown workload = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "warp-speed",
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown mode = %d, want 400", code)
	}
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "timing", "bogus_field": 1,
	}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", code)
	}
}

func TestGetUnknownJob(t *testing.T) {
	ts, _ := newService(t, server.SimRunner(), 1)
	if code := getJSON(t, ts.URL+"/v1/jobs/j-missing", nil); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

func TestCancelJobOverHTTP(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	runner := func(ctx context.Context, spec jobs.Spec) (any, error) {
		select {
		case <-block:
			return "unreachable", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	ts, _ := newService(t, runner, 1)
	var info jobs.JobInfo
	if code := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"workload": "bfs", "mode": "functional",
	}, &info); code != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+info.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer resp.Body.Close()
	var cancelled jobs.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&cancelled); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || cancelled.State != jobs.StateCancelled {
		t.Fatalf("cancel = %d %+v, want 200 cancelled", resp.StatusCode, cancelled)
	}
}
