package sm

import (
	"math"

	"critload/internal/isa"
)

// NextEvent reports the earliest cycle after now at which this SM's
// observable state (or any statistic it records) can change, assuming the SM
// was just stepped at now and no replies arrive before the reported cycle.
// math.MaxInt64 means the SM is fully event-driven until something external
// (a reply, a CTA launch) reaches it. Underestimating is safe — the engine
// merely steps a cycle in which nothing happens, exactly as the serial loop
// would — but overestimating would skip observable work, so every path here
// is conservative.
func (s *SM) NextEvent(now int64) int64 {
	// A non-empty LD/ST queue retries an access every cycle, and every
	// attempt mutates the Figure 3 outcome counters: unskippable.
	if len(s.ldstQ) > 0 {
		return now + 1
	}
	// An instruction issued this cycle usually means another can issue next
	// cycle; claiming so without scanning the warps is a safe underestimate.
	if s.lastIssue == now {
		return now + 1
	}
	// While the stall cache is valid the SM is frozen: the horizon computed
	// when it was set still holds, no scan needed.
	if s.stallUntil > now+1 {
		return s.stallUntil
	}
	horizon := int64(math.MaxInt64)
	for i := range s.wbEvents {
		if t := s.wbEvents[i].at; t < horizon {
			horizon = t
		}
	}
	for i := range s.hitEvents {
		if t := s.hitEvents[i].at; t < horizon {
			horizon = t
		}
	}
	// Warps blocked only by a busy function unit wake when it frees. Warps
	// blocked by the scoreboard wake via a writeback or reply event, both
	// covered elsewhere; warps at a barrier wake via another warp's issue.
	for _, wc := range s.warps {
		if wc.w.AtBarrier {
			continue
		}
		in := wc.w.NextInst()
		if in == nil || !wc.scoreboardReady(in) {
			continue
		}
		t := s.unitBusyUntil[in.Unit()]
		if t <= now {
			return now + 1 // eligible immediately
		}
		if t < horizon {
			horizon = t
		}
	}
	if horizon <= now {
		horizon = now + 1
	}
	return horizon
}

// AccountIdle folds a skipped window of n cycles starting at from into the
// occupancy statistics, producing byte-identical counters to n per-cycle
// recordOccupancy calls. The fast-forward contract guarantees the LD/ST
// queue stays empty across the window, so each unit's busy cycles are just
// the clamped tail of its busy-until horizon.
func (s *SM) AccountIdle(from, n int64) {
	s.col.RecordSMCycles(uint64(n))
	for u := range s.unitBusyUntil {
		if busy := min(max(s.unitBusyUntil[u]-from, 0), n); busy > 0 {
			s.col.RecordUnitCycles(isa.FuncUnit(u), uint64(busy))
		}
	}
}
