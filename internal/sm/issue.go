package sm

import (
	"fmt"

	"critload/internal/coalesce"
	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/memreq"
)

// issue runs every warp scheduler once; each may issue at most one
// instruction per cycle.
func (s *SM) issue(now int64) error {
	for sched := 0; sched < s.cfg.NumSchedulers; sched++ {
		wc := s.pickWarp(sched, now)
		if wc == nil {
			continue
		}
		if err := s.issueWarp(wc, now); err != nil {
			return err
		}
		s.lastIssue = now
		if s.cfg.Policy == GTO {
			s.greedy[sched] = wc
		}
	}
	return nil
}

// eligible reports whether the warp can issue this cycle.
func (s *SM) eligible(wc *warpCtx, now int64) bool {
	if wc.w.AtBarrier {
		return false
	}
	in := wc.w.NextInst()
	if in == nil {
		return false
	}
	if !wc.scoreboardReady(in) {
		return false
	}
	u := in.Unit()
	if u == isa.UnitLDST {
		return !s.ldstBusy(now)
	}
	return s.unitBusyUntil[u] <= now
}

// pickWarp selects the next warp for a scheduler according to the policy.
// Warps are partitioned over schedulers by arrival order (age modulo
// scheduler count), as on Fermi.
func (s *SM) pickWarp(sched int, now int64) *warpCtx {
	mine := s.schedWarps[sched]
	if len(mine) == 0 {
		return nil
	}
	if s.cfg.Policy == GTO {
		// Greedy: stay on the last warp while it can issue.
		if g := s.greedy[sched]; g != nil && s.eligible(g, now) {
			return g
		}
		// Then oldest first; schedWarps is already in arrival order.
		for _, wc := range mine {
			if s.eligible(wc, now) {
				return wc
			}
		}
		return nil
	}
	// Loose round-robin.
	start := s.rr[sched] % len(mine)
	for i := 0; i < len(mine); i++ {
		wc := mine[(start+i)%len(mine)]
		if s.eligible(wc, now) {
			s.rr[sched] = (start + i + 1) % len(mine)
			return wc
		}
	}
	return nil
}

// issueWarp functionally executes the warp's next instruction and models its
// timing consequences.
func (s *SM) issueWarp(wc *warpCtx, now int64) error {
	step, err := wc.w.Execute(s.env)
	if err != nil {
		return fmt.Errorf("sm %d: %w", s.ID, err)
	}
	s.InstructionsIssued++
	in := step.Inst
	s.col.WarpInsts++
	s.col.ThreadInsts += uint64(step.ExecCount())
	switch {
	case in.IsSharedLoad():
		s.col.SLoadWarps++
	case in.Op == isa.OpSt && in.Space == isa.SpaceGlobal:
		s.col.GStoreWarps++
	}

	switch {
	case in.Op == isa.OpBar:
		s.maybeReleaseBarrier(wc.cta)
	case in.Op.IsControl():
		// Branches/exit have no destination and no unit occupancy beyond
		// the issue slot.
	case in.Op == isa.OpLd && (in.Space == isa.SpaceParam || in.Space == isa.SpaceConst):
		// Parameter/constant accesses hit the small constant cache.
		s.unitBusyUntil[isa.UnitLDST] = now + 1
		s.scheduleWriteback(wc, in, now+s.cfg.ConstLat)
	case in.Op.IsMemory() && in.Space == isa.SpaceShared:
		s.unitBusyUntil[isa.UnitLDST] = now + 1
		if in.Op == isa.OpLd {
			s.scheduleWriteback(wc, in, now+s.cfg.SharedLat)
		}
	case in.Op.IsMemory():
		s.issueGlobalMemOp(wc, &step, now)
	case in.Unit() == isa.UnitSFU:
		s.unitBusyUntil[isa.UnitSFU] = now + s.cfg.SFUInit
		s.scheduleWriteback(wc, in, now+s.cfg.SFULatency)
	default:
		s.unitBusyUntil[isa.UnitSP] = now + s.cfg.SPInit
		s.scheduleWriteback(wc, in, now+s.cfg.SPLatency)
	}

	if step.Exited {
		s.retireWarp(wc)
	}
	return nil
}

func (s *SM) retireWarp(wc *warpCtx) {
	wc.cta.liveWarps--
	if wc.cta.liveWarps == 0 {
		s.retireCTA(wc.cta)
	}
}

// maybeReleaseBarrier releases the CTA barrier once every live warp arrived.
func (s *SM) maybeReleaseBarrier(cc *ctaCtx) {
	for _, w := range cc.cta.Warps {
		if !w.Done() && !w.AtBarrier {
			return
		}
	}
	cc.cta.ReleaseBarrier()
}

// issueGlobalMemOp coalesces a global-space memory instruction into block
// requests and enqueues the op into the LD/ST pipeline.
func (s *SM) issueGlobalMemOp(wc *warpCtx, step *emu.Step, now int64) {
	in := step.Inst
	s.accScratch = coalesce.CoalesceInto(s.accScratch[:0], step.Exec, &step.Addrs)
	accs := s.accScratch
	if len(accs) == 0 {
		// Fully predicated-off memory op: nothing to do.
		s.unitBusyUntil[isa.UnitLDST] = now + 1
		return
	}
	op := s.getOp()
	op.warp, op.inst, op.issued, op.firstAcc = wc, in, now, -1
	switch in.Op {
	case isa.OpLd:
		op.kind = opGlobalLoad
		op.isLoad = true
		op.nonDet = s.classify != nil && s.classify(in.PC)
	case isa.OpAtom:
		op.kind = opAtomic
		op.isLoad = in.Dst.Kind == isa.OpdReg
	default:
		op.kind = opGlobalStore
	}

	kind := memreq.Load
	switch op.kind {
	case opGlobalStore:
		kind = memreq.Store
	case opAtomic:
		kind = memreq.Atomic
	}
	for _, a := range accs {
		s.nextReqID++
		r := s.pool.Get()
		r.ID = uint64(s.ID)<<48 | s.nextReqID
		r.Block = a.Block
		r.Kind = kind
		r.SM = s.ID
		r.Partition = s.backend.PartitionOf(s.ID, a.Block)
		r.PC = in.PC
		r.Kernel = s.kernelName
		r.NonDet = op.nonDet
		r.Lanes = a.LaneCount()
		r.Issued = now
		op.reqs = append(op.reqs, r)
	}
	if op.isLoad {
		// Loads (and value-returning atomics) hold their destination until
		// the last response arrives.
		reg := in.DefReg()
		if reg >= 0 {
			wc.pendingReg[reg]++
		}
		s.outstanding[op] = len(op.reqs)
		for _, r := range op.reqs {
			s.reqOwner[r] = op
		}
		if op.kind == opGlobalLoad {
			cat := op.category()
			s.col.Requests[cat] += uint64(len(op.reqs))
			s.col.GLoadWarps[cat]++
			s.col.GLoadThreads[cat] += uint64(step.ExecCount())
		}
	}
	s.ldstQ = append(s.ldstQ, op)
	s.unitBusyUntil[isa.UnitLDST] = now + 1
}
