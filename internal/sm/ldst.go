package sm

import (
	"critload/internal/cache"
	"critload/internal/icnt"
	"critload/internal/memreq"
	"critload/internal/stats"
)

// stepLDST advances the memory pipeline one cycle: local hit completions,
// then one L1 access attempt for the oldest op that still has requests to
// present (strictly in order, as in the paper: "trailing requests must wait
// even longer until cache resources are available").
func (s *SM) stepLDST(now int64) {
	s.processHits(now)

	// Fully accepted ops at the head have left the issue stage and only
	// wait for responses; drop them from the queue.
	for len(s.ldstQ) > 0 && s.ldstQ[0].next >= len(s.ldstQ[0].reqs) {
		s.popLDST()
	}
	if len(s.ldstQ) == 0 {
		return
	}
	op := s.ldstQ[0]
	r := op.reqs[op.next]
	switch op.kind {
	case opGlobalStore:
		s.tryStore(op, r, now)
	default:
		s.tryLoad(op, r, now)
	}
	// Ops that finished presenting all requests leave the issue queue so
	// the next op can start next cycle.
	if op.next >= len(op.reqs) {
		s.popLDST()
		if op.kind == opGlobalStore {
			// Stores retire at acceptance; nothing outstanding. Their
			// requests are recycled downstream when the DRAM channel issues
			// them, so only the op itself returns to the free list here.
			s.putOp(op)
			return
		}
		if !op.isLoad {
			// Atomic without a destination: nothing tracks the op, and its
			// requests retire individually as ownerless replies.
			s.putOp(op)
			return
		}
		if s.outstanding[op] == 0 {
			// Every request hit: completion happens via hit events; the op
			// is already tracked there.
			return
		}
	}
}

func (s *SM) popLDST() {
	s.ldstQ = s.ldstQ[1:]
	if len(s.ldstQ) == 0 {
		s.ldstQ = nil
	}
}

// tryLoad presents one load/atomic request to the L1 (or, for
// non-deterministic loads under the Section X.A bypass, straight to the
// request network).
func (s *SM) tryLoad(op *memOp, r *memreq.Request, now int64) {
	if s.cfg.NonDetBypassL1 && op.nonDet {
		if !s.backend.CanInject(s.ID) {
			if op.kind == opGlobalLoad {
				s.col.RecordL1Outcome(op.category(), cache.RsrvFailICNT)
			}
			return
		}
		r.BypassL1 = true
		r.AcceptedL1 = now
		r.InjectedICNT = now
		s.backend.Inject(r, icnt.ControlFlits, now)
		if op.kind == opGlobalLoad {
			s.col.RecordL1Outcome(op.category(), cache.Miss)
		}
		op.noteAccept(now)
		op.next++
		return
	}
	inject := func() bool {
		if !s.backend.CanInject(s.ID) {
			return false
		}
		r.InjectedICNT = now
		s.backend.Inject(r, icnt.ControlFlits, now)
		return true
	}
	outcome := s.L1.Access(r, now, inject)
	if op.kind == opGlobalLoad {
		s.col.RecordL1Outcome(op.category(), outcome)
	}
	if !outcome.Accepted() {
		return
	}
	r.AcceptedL1 = now
	if outcome == cache.Hit {
		r.Serviced = memreq.LvlL1
		s.hitEvents = append(s.hitEvents, timedReq{at: now + s.cfg.L1.HitLatency, req: r})
	}
	if outcome == cache.Miss && s.cfg.PrefetchNextLine {
		s.tryPrefetch(r, now)
	}
	op.noteAccept(now)
	op.next++
}

// tryPrefetch issues a best-effort next-line prefetch after a demand miss.
// It competes for the same tag, MSHR and interconnect resources as demand
// requests and is dropped silently when any reservation fails. The fill
// completes through the normal reply path; demand accesses that arrive in
// the meantime merge on the reserved line as hit-reserved.
func (s *SM) tryPrefetch(demand *memreq.Request, now int64) {
	block := demand.Block + uint32(s.cfg.L1.LineBytes)
	s.nextReqID++
	pf := s.pool.Get()
	pf.ID = uint64(s.ID)<<48 | s.nextReqID
	pf.Block = block
	pf.Kind = memreq.Load
	pf.SM = s.ID
	pf.Partition = s.backend.PartitionOf(s.ID, block)
	pf.PC = demand.PC
	pf.Kernel = s.kernelName
	pf.NonDet = demand.NonDet
	pf.Prefetch = true
	pf.Issued = now
	inject := func() bool {
		if !s.backend.CanInject(s.ID) {
			return false
		}
		pf.InjectedICNT = now
		s.backend.Inject(pf, icnt.ControlFlits, now)
		return true
	}
	// The prefetch probe's outcome is deliberately not recorded in the
	// Figure 3 statistics: the paper's cycle accounting covers demand
	// accesses only.
	switch s.L1.Access(pf, now, inject) {
	case cache.Miss:
		s.col.Prefetches++
	case cache.HitReserved:
		// Merged onto an in-flight line: retires as a fill target later.
	default:
		s.pool.Put(pf) // not retained by the cache: recycle immediately
	}
}

// tryStore injects one write-through store request into the request network
// (no L1 allocation on the Fermi write-no-allocate path).
func (s *SM) tryStore(op *memOp, r *memreq.Request, now int64) {
	if !s.backend.CanInject(s.ID) {
		return
	}
	r.AcceptedL1 = now
	r.InjectedICNT = now
	s.backend.Inject(r, icnt.DataFlits, now)
	op.noteAccept(now)
	op.next++
}

func (op *memOp) noteAccept(now int64) {
	if op.firstAcc < 0 {
		op.firstAcc = now
	}
	op.lastAcc = now
}

// processHits completes locally-serviced (L1 hit) requests whose latency
// elapsed.
func (s *SM) processHits(now int64) {
	kept := s.hitEvents[:0]
	for _, e := range s.hitEvents {
		if e.at > now {
			kept = append(kept, e)
			continue
		}
		e.req.Returned = now
		s.completeRequest(e.req, now)
	}
	s.hitEvents = kept
}

// HandleReply receives a response from the reply network: it fills the L1
// line and completes every request merged on it.
func (s *SM) HandleReply(r *memreq.Request, now int64) {
	if r.Kind == memreq.Store {
		return // write acks are not modeled
	}
	// A completing load can clear a scoreboard hazard right now; the stall
	// cache's deadlines know nothing about external arrivals.
	s.stallUntil = 0
	if r.BypassL1 {
		r.Returned = now
		s.completeRequest(r, now)
		return
	}
	targets := s.L1.Fill(r.Block, now)
	for _, t := range targets {
		t.Returned = now
		if t.Serviced == memreq.LvlNone {
			// Merged (hit-reserved) requests inherit the primary's level.
			t.Serviced = r.Serviced
		}
		s.completeRequest(t, now)
	}
}

// completeRequest accounts one returned response toward its owning warp op
// and completes the op when the last response arrives.
func (s *SM) completeRequest(r *memreq.Request, now int64) {
	if s.tracer != nil {
		s.tracer.Add(r)
	}
	op, ok := s.reqOwner[r]
	if !ok {
		// Ownerless responses (prefetches, atomics without a destination)
		// are terminal once traced.
		s.pool.Put(r)
		return
	}
	delete(s.reqOwner, r)
	s.outstanding[op]--
	if s.outstanding[op] > 0 {
		return
	}
	delete(s.outstanding, op)
	s.completeLoadOp(op, now)
}

// releaseOp recycles a completed op and its requests; every response has
// been recorded and traced by the time this runs.
func (s *SM) releaseOp(op *memOp) {
	for _, r := range op.reqs {
		s.pool.Put(r)
	}
	s.putOp(op)
}

// completeLoadOp writes back the load and folds its timing into the
// turnaround statistics (Fig 5-7 decomposition).
func (s *SM) completeLoadOp(op *memOp, now int64) {
	if reg := op.inst.DefReg(); reg >= 0 {
		op.warp.pendingReg[reg]--
	}
	if op.kind != opGlobalLoad {
		s.releaseOp(op) // atomics are not part of the paper's load statistics
		return
	}

	total := now - op.issued
	var unloaded int64
	var firstRet, lastRet int64 = 1 << 62, 0
	var icntGapSum int64
	var missCount int64
	for _, r := range op.reqs {
		if u := s.lat.Unloaded(r.Serviced); u > unloaded {
			unloaded = u
		}
		if r.Returned < firstRet {
			firstRet = r.Returned
		}
		if r.Returned > lastRet {
			lastRet = r.Returned
		}
		if r.ArrivedL2 > 0 && r.InjectedICNT > 0 {
			if g := r.ArrivedL2 - r.InjectedICNT - s.lat.Icnt; g > 0 {
				icntGapSum += g
			}
			missCount++
		}
	}
	if unloaded > total {
		unloaded = total
	}
	rsrvPrev := op.firstAcc - op.issued
	rsrvCurr := op.lastAcc - op.firstAcc
	if rsrvPrev < 0 {
		rsrvPrev = 0
	}
	rec := stats.LoadOpRecord{
		Kernel:   s.kernelName,
		PC:       op.inst.PC,
		NonDet:   op.nonDet,
		NReq:     len(op.reqs),
		Total:    total,
		Unloaded: unloaded,
		RsrvPrev: rsrvPrev,
		RsrvCurr: rsrvCurr,
		GapL2Icnt: func() int64 {
			if lastRet >= firstRet && firstRet < 1<<62 {
				return lastRet - firstRet
			}
			return 0
		}(),
	}
	if missCount > 0 {
		rec.GapIcntL2 = icntGapSum / missCount
	}
	s.col.RecordLoadOp(rec)
	s.releaseOp(op)
}
