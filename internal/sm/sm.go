// Package sm models one streaming multiprocessor: warp contexts with a
// scoreboard, two warp schedulers (loose round-robin or greedy-then-oldest),
// SP / SFU / LD-ST function units with first-stage occupancy tracking, a
// coalescing LD/ST pipeline in front of a private L1 data cache, barrier
// handling, and CTA resource accounting. The observable behaviours are the
// ones the paper measures: per-access L1 outcomes (Fig 3), unit idle
// fractions (Fig 4), and per-load turnaround decompositions (Fig 5-7).
package sm

import (
	"fmt"

	"critload/internal/cache"
	"critload/internal/coalesce"
	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/memreq"
	"critload/internal/stats"
)

// Policy selects the warp scheduling policy.
type Policy uint8

// Warp scheduler policies.
const (
	LRR Policy = iota // loose round-robin
	GTO               // greedy-then-oldest
)

func (p Policy) String() string {
	if p == GTO {
		return "gto"
	}
	return "lrr"
}

// Config sizes one SM. The defaults mirror Table II's Tesla C2050 setup.
type Config struct {
	NumSchedulers  int
	MaxWarps       int
	MaxCTAs        int
	MaxThreads     int
	SharedMemBytes int
	Registers      int // 32-bit registers per SM (128 KB register file)

	SPLatency    int64 // SP result latency
	SPInit       int64 // SP initiation interval (first-stage occupancy)
	SFULatency   int64
	SFUInit      int64
	SharedLat    int64 // shared-memory load/store latency
	ConstLat     int64 // parameter/constant access latency
	LDSTQueueCap int   // warp memory ops concurrently issuing accesses

	Policy Policy
	L1     cache.Config

	// NonDetBypassL1 enables the Section X.A instruction-specific
	// optimization: non-deterministic loads skip the L1 entirely so their
	// bursty request streams stop exhausting cache tags and MSHRs that
	// deterministic loads could use.
	NonDetBypassL1 bool

	// PrefetchNextLine enables a simple next-line prefetcher on L1 misses —
	// the kind of application-oblivious mechanism the paper contrasts with
	// instruction-aware ones: it helps the unit-stride deterministic
	// streams but wastes tags and bandwidth on non-deterministic loads.
	PrefetchNextLine bool
}

// DefaultConfig returns the Table II SM configuration.
func DefaultConfig() Config {
	return Config{
		NumSchedulers:  2,
		MaxWarps:       48,
		MaxCTAs:        8,
		MaxThreads:     1536,
		SharedMemBytes: 48 * 1024,
		Registers:      32768,
		SPLatency:      4,
		SPInit:         1,
		SFULatency:     16,
		SFUInit:        8,
		SharedLat:      24,
		ConstLat:       8,
		LDSTQueueCap:   4,
		Policy:         LRR,
		L1: cache.Config{
			Bytes: 16 * 1024, LineBytes: 128, Ways: 4,
			MSHREntries: 64, MSHRTargets: 8, HitLatency: 18,
		},
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.NumSchedulers <= 0 || c.MaxWarps <= 0 || c.MaxCTAs <= 0 ||
		c.MaxThreads <= 0 || c.LDSTQueueCap <= 0 {
		return fmt.Errorf("sm: bad config %+v", c)
	}
	return c.L1.Validate()
}

// LatencyModel gives the unloaded end-to-end latencies used by the
// turnaround decomposition (Fig 5's bottom component).
type LatencyModel struct {
	L1Hit int64 // load serviced by the L1
	L2Hit int64 // L1 miss serviced by the L2
	DRAM  int64 // L1+L2 miss serviced by DRAM
	Icnt  int64 // one-way unloaded network latency
}

// Unloaded returns the unloaded latency for a service level.
func (m LatencyModel) Unloaded(lvl memreq.Level) int64 {
	switch lvl {
	case memreq.LvlL1:
		return m.L1Hit
	case memreq.LvlL2:
		return m.L2Hit
	case memreq.LvlDRAM:
		return m.DRAM
	}
	return 0
}

// Tracer receives every completed load request; implemented by
// trace.Buffer. A nil tracer disables tracing.
type Tracer interface {
	Add(r *memreq.Request)
}

// Backend is the SM's view of the rest of the GPU (implemented by the gpu
// package): request-network injection, address mapping, and CTA retirement.
type Backend interface {
	// CanInject reports whether this SM can inject a packet into the request
	// network right now; it backs the L1's interconnect reservation.
	CanInject(smID int) bool
	// Inject sends a request into the request network. It must only be
	// called after CanInject returned true in the same cycle.
	Inject(r *memreq.Request, flits int64, now int64)
	// PartitionOf maps a block address (as accessed by the given SM) to its
	// memory partition. The SM id matters only for the semi-global L2
	// organization of Section X.C, where SM clusters own L2 slice groups.
	PartitionOf(smID int, block uint32) int
	// CTAFinished notifies that a CTA fully retired on the SM.
	CTAFinished(smID int, cta *emu.CTA)
}

type ctaCtx struct {
	cta       *emu.CTA
	liveWarps int
	threads   int
	shared    int
	regs      int
}

type warpCtx struct {
	w           *emu.Warp
	cta         *ctaCtx
	pendingReg  []int // per-register outstanding writes
	pendingPred []int
	age         int // global arrival order (GTO tiebreak)
}

// scoreboardReady reports whether the warp's next instruction has no RAW/WAW
// hazard on in-flight results.
func (wc *warpCtx) scoreboardReady(in *isa.Instruction) bool {
	var buf [4]int
	for _, r := range in.SourceRegs(buf[:0]) {
		if wc.pendingReg[r] > 0 {
			return false
		}
	}
	if d := in.DefReg(); d >= 0 && wc.pendingReg[d] > 0 {
		return false
	}
	if d := in.DefPred(); d >= 0 && wc.pendingPred[d] > 0 {
		return false
	}
	if in.Guard.Active() && wc.pendingPred[in.Guard.Reg] > 0 {
		return false
	}
	for s := 0; s < in.NSrc; s++ {
		if in.Srcs[s].Kind == isa.OpdPred && wc.pendingPred[in.Srcs[s].Reg] > 0 {
			return false
		}
	}
	return true
}

type memOpKind uint8

const (
	opGlobalLoad memOpKind = iota
	opGlobalStore
	opAtomic
)

// memOp is one warp-level memory instruction in the LD/ST pipeline.
type memOp struct {
	kind     memOpKind
	warp     *warpCtx
	inst     *isa.Instruction
	reqs     []*memreq.Request
	next     int // next request to present to the L1 / network
	issued   int64
	firstAcc int64 // first request acceptance cycle (-1 until set)
	lastAcc  int64
	nonDet   bool
	isLoad   bool // writes back a destination register
}

func (op *memOp) category() stats.Category { return stats.CatOf(op.nonDet) }

type timedReq struct {
	at  int64
	req *memreq.Request
}

type wbEvent struct {
	at   int64
	warp *warpCtx
	reg  int // general register, -1 if none
	pred int // predicate register, -1 if none
}

// SM is one streaming multiprocessor.
type SM struct {
	ID  int
	cfg Config
	lat LatencyModel

	backend Backend
	col     *stats.Collector

	// Current kernel context (set per launch).
	env        *emu.Env
	classify   stats.Classifier
	kernelName string

	L1 *cache.Cache

	ctas  []*ctaCtx
	warps []*warpCtx
	// schedWarps partitions the live warps over the schedulers (by age
	// modulo scheduler count, as on Fermi); maintained on CTA launch/retire.
	schedWarps [][]*warpCtx
	age        int

	usedThreads int
	usedShared  int
	usedRegs    int

	unitBusyUntil [isa.NumFuncUnits]int64
	ldstQ         []*memOp
	wbEvents      []wbEvent
	hitEvents     []timedReq
	reqOwner      map[*memreq.Request]*memOp
	outstanding   map[*memOp]int // unreturned responses per load op

	rr     []int // per-scheduler round-robin cursor
	greedy []*warpCtx

	// Zero-alloc hot-path state: the device-wide request free list, a local
	// memOp free list, a coalescer scratch slice, and the cycle of the last
	// instruction issue (a cheap NextEvent shortcut).
	pool       *memreq.Pool
	opFree     []*memOp
	accScratch []coalesce.Access
	lastIssue  int64

	// Stall cache, used only under the fast-forward engine (the naive loop
	// stays a dumb oracle that re-scans every cycle). After a cycle in which
	// nothing issued and the LD/ST queue is empty, stallUntil holds the SM's
	// NextEvent horizon: no internal deadline (writeback, hit, unit free) and
	// hence no issue can occur before it, so Step skips the scheduler scan and
	// NextEvent returns it directly. Anything external that can wake a warp
	// (a reply, a new CTA, a new kernel) resets it to 0.
	fastForward bool
	stallUntil  int64

	nextReqID uint64
	tracer    Tracer

	// InstructionsIssued counts issued warp instructions (all units).
	InstructionsIssued uint64
}

// SetTracer installs (or removes, with nil) a per-request trace sink.
func (s *SM) SetTracer(t Tracer) { s.tracer = t }

// SetPool installs the device-wide request free list (nil keeps plain
// allocation). The gpu package shares one pool across all SMs and memory
// partitions; see memreq.Pool for the ownership rules.
func (s *SM) SetPool(p *memreq.Pool) { s.pool = p }

// SetFastForward enables the stall cache that lets Step elide provably
// fruitless scheduler scans. Only the fast-forward engine turns it on: the
// serial loop is kept free of event reasoning so it remains an independent
// differential-testing oracle (a NextEvent overestimate then shows up as an
// engine divergence instead of corrupting both engines identically).
func (s *SM) SetFastForward(on bool) { s.fastForward = on }

// getOp takes a memOp from the free list (or allocates one), keeping the
// recycled reqs backing array.
func (s *SM) getOp() *memOp {
	if n := len(s.opFree); n > 0 {
		op := s.opFree[n-1]
		s.opFree[n-1] = nil
		s.opFree = s.opFree[:n-1]
		reqs := op.reqs[:0]
		*op = memOp{reqs: reqs}
		return op
	}
	return &memOp{}
}

// putOp recycles a terminal memOp: one that left the LD/ST queue and whose
// completion (if any) has been fully recorded. Request pointers are dropped
// here; the requests themselves are recycled at their own terminal points.
func (s *SM) putOp(op *memOp) {
	for i := range op.reqs {
		op.reqs[i] = nil
	}
	op.reqs = op.reqs[:0]
	op.warp = nil
	op.inst = nil
	s.opFree = append(s.opFree, op)
}

// New builds an SM.
func New(id int, cfg Config, lat LatencyModel, backend Backend, col *stats.Collector) (*SM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if backend == nil || col == nil {
		return nil, fmt.Errorf("sm: nil backend or collector")
	}
	return &SM{
		ID: id, cfg: cfg, lat: lat, backend: backend, col: col,
		L1:          cache.MustNew(cfg.L1),
		reqOwner:    map[*memreq.Request]*memOp{},
		outstanding: map[*memOp]int{},
		rr:          make([]int, cfg.NumSchedulers),
		greedy:      make([]*warpCtx, cfg.NumSchedulers),
		schedWarps:  make([][]*warpCtx, cfg.NumSchedulers),
		lastIssue:   -1,
	}, nil
}

// SetKernel installs the kernel context for the next launch.
func (s *SM) SetKernel(env *emu.Env, kernelName string, classify stats.Classifier) {
	s.env = env
	s.kernelName = kernelName
	s.classify = classify
	s.stallUntil = 0
	// GPUs invalidate L1 between kernel launches.
	s.L1.InvalidateAll()
}

// CanAccept reports whether the SM has resources for one more CTA of the
// launch.
func (s *SM) CanAccept(l *emu.Launch) bool {
	threads := l.Block.Count()
	warps := l.WarpsPerCTA()
	regs := l.Kernel.NumRegs * threads
	return len(s.ctas) < s.cfg.MaxCTAs &&
		s.usedThreads+threads <= s.cfg.MaxThreads &&
		len(s.warps)+warps <= s.cfg.MaxWarps &&
		s.usedShared+l.Kernel.SharedBytes <= s.cfg.SharedMemBytes &&
		s.usedRegs+regs <= s.cfg.Registers
}

// LaunchCTA instantiates CTA id of the launch on this SM; the caller must
// have checked CanAccept.
func (s *SM) LaunchCTA(l *emu.Launch, id int) {
	cta := emu.NewCTA(l, id)
	cc := &ctaCtx{
		cta:       cta,
		liveWarps: len(cta.Warps),
		threads:   l.Block.Count(),
		shared:    l.Kernel.SharedBytes,
		regs:      l.Kernel.NumRegs * l.Block.Count(),
	}
	s.ctas = append(s.ctas, cc)
	s.stallUntil = 0 // fresh warps may issue immediately
	s.usedThreads += cc.threads
	s.usedShared += cc.shared
	s.usedRegs += cc.regs
	for _, w := range cta.Warps {
		wc := &warpCtx{
			w: w, cta: cc,
			pendingReg:  make([]int, l.Kernel.NumRegs),
			pendingPred: make([]int, l.Kernel.NumPreds),
			age:         s.age,
		}
		s.warps = append(s.warps, wc)
		sched := wc.age % s.cfg.NumSchedulers
		s.schedWarps[sched] = append(s.schedWarps[sched], wc)
		s.age++
	}
}

// LiveCTAs returns the number of resident CTAs.
func (s *SM) LiveCTAs() int { return len(s.ctas) }

// Idle reports whether the SM has no work at all: no live warps and no
// in-flight memory operations or events.
func (s *SM) Idle() bool {
	return len(s.warps) == 0 && len(s.ldstQ) == 0 &&
		len(s.wbEvents) == 0 && len(s.hitEvents) == 0 &&
		len(s.reqOwner) == 0
}

// retireCTA frees a finished CTA's resources.
func (s *SM) retireCTA(cc *ctaCtx) {
	for i, c := range s.ctas {
		if c == cc {
			s.ctas = append(s.ctas[:i], s.ctas[i+1:]...)
			break
		}
	}
	s.usedThreads -= cc.threads
	s.usedShared -= cc.shared
	s.usedRegs -= cc.regs
	// Remove retired warps.
	kept := s.warps[:0]
	for _, wc := range s.warps {
		if wc.cta != cc {
			kept = append(kept, wc)
		}
	}
	s.warps = kept
	for sched := range s.schedWarps {
		sk := s.schedWarps[sched][:0]
		for _, wc := range s.schedWarps[sched] {
			if wc.cta != cc {
				sk = append(sk, wc)
			}
		}
		s.schedWarps[sched] = sk
	}
	for i := range s.greedy {
		if s.greedy[i] != nil && s.greedy[i].cta == cc {
			s.greedy[i] = nil
		}
	}
	s.backend.CTAFinished(s.ID, cc.cta)
}

// Step advances the SM one cycle: completions, the LD/ST pipeline, then
// instruction issue, then occupancy statistics. It is exactly
// StepMem followed (when not frozen) by StepIssue; the split exists so the
// parallel cycle engine can run the memory-pipeline halves of all SMs
// concurrently and the issue halves serially.
func (s *SM) Step(now int64) error {
	if s.StepMem(now) {
		return nil
	}
	return s.StepIssue(now)
}

// StepMem advances the completion and LD/ST pipeline half of a cycle and
// reports whether the SM is frozen by a valid stall cache — in which case the
// cycle is fully accounted and StepIssue must not run.
//
// Step isolation (the parallel engine's phase-1 contract): everything this
// method touches is either owned by this SM — warp contexts, the private L1,
// the per-SM request pool and collector shard, the event queues — or reaches
// shared components only through their concurrency-safe merge points: request
// injection goes to this SM's own source queue of a deferred-mode network
// (per-source staging, serially committed), and PartitionOf is a pure
// function of the configuration. No functional execution happens here — warp
// instructions (and hence all reads and writes of the shared simulated
// memory) execute at issue, which the parallel engine serializes. The one
// exception is an installed Tracer, whose Add order is globally meaningful;
// the engine falls back to stepping SMs serially when tracing.
func (s *SM) StepMem(now int64) bool {
	s.processWritebacks(now)
	s.stepLDST(now)
	if now < s.stallUntil {
		// Frozen: stallUntil is the minimum over every internal deadline, so
		// nothing was processed above and no warp can have become issuable.
		// Only the occupancy counters advance, exactly as a fruitless full
		// step would leave them.
		s.recordOccupancy(now)
		return true
	}
	return false
}

// MemQuietAt reports whether StepMem(now) would freeze immediately: a valid
// stall cache proves no completion, retry, or injection can happen at now, so
// the call would only advance the occupancy counters. The parallel engine's
// adaptive controller uses this as its per-cycle occupancy probe — a quiet
// StepMem is too cheap to be worth a worker handoff. Only meaningful under
// fast-forward (the stall cache stays 0 otherwise, reporting never-quiet).
func (s *SM) MemQuietAt(now int64) bool {
	return now < s.stallUntil
}

// StepIssue runs the issue half of a cycle: the warp schedulers (functionally
// executing the chosen instructions), the stall-cache refresh, and the
// occupancy statistics. It must only be called after StepMem(now) returned
// false, and — because functional execution reads and writes the shared
// simulated memory — from one goroutine at a time, in SM-id order, to stay
// byte-identical to the serial loop.
func (s *SM) StepIssue(now int64) error {
	if err := s.issue(now); err != nil {
		return err
	}
	if s.fastForward && s.lastIssue != now && len(s.ldstQ) == 0 {
		s.stallUntil = s.NextEvent(now)
	} else {
		s.stallUntil = 0
	}
	s.recordOccupancy(now)
	return nil
}

func (s *SM) recordOccupancy(now int64) {
	s.col.RecordSMCycle()
	s.col.RecordUnitCycle(isa.UnitSP, s.unitBusyUntil[isa.UnitSP] > now)
	s.col.RecordUnitCycle(isa.UnitSFU, s.unitBusyUntil[isa.UnitSFU] > now)
	s.col.RecordUnitCycle(isa.UnitLDST, s.ldstBusy(now))
}

// ldstBusy reports whether the LD/ST first stage cannot accept a new warp
// memory instruction.
func (s *SM) ldstBusy(now int64) bool {
	return len(s.ldstQ) >= s.cfg.LDSTQueueCap || s.unitBusyUntil[isa.UnitLDST] > now
}

func (s *SM) processWritebacks(now int64) {
	kept := s.wbEvents[:0]
	for _, e := range s.wbEvents {
		if e.at > now {
			kept = append(kept, e)
			continue
		}
		if e.reg >= 0 {
			e.warp.pendingReg[e.reg]--
		}
		if e.pred >= 0 {
			e.warp.pendingPred[e.pred]--
		}
	}
	s.wbEvents = kept
}

func (s *SM) scheduleWriteback(wc *warpCtx, in *isa.Instruction, at int64) {
	reg, pred := in.DefReg(), in.DefPred()
	if reg < 0 && pred < 0 {
		return
	}
	if reg >= 0 {
		wc.pendingReg[reg]++
	}
	if pred >= 0 {
		wc.pendingPred[pred]++
	}
	s.wbEvents = append(s.wbEvents, wbEvent{at: at, warp: wc, reg: reg, pred: pred})
}
