package sm

import (
	"testing"

	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/mem"
	"critload/internal/memreq"
	"critload/internal/ptx"
	"critload/internal/stats"
)

// mockBackend satisfies Backend with an unlimited request network; injected
// requests are collected and can be answered manually.
type mockBackend struct {
	injected []*memreq.Request
	blocked  bool // when true, CanInject refuses
	finished int
}

func (m *mockBackend) CanInject(smID int) bool { return !m.blocked }

func (m *mockBackend) Inject(r *memreq.Request, flits int64, now int64) {
	m.injected = append(m.injected, r)
}

func (m *mockBackend) PartitionOf(smID int, block uint32) int { return int(block/128) % 6 }

func (m *mockBackend) CTAFinished(smID int, cta *emu.CTA) { m.finished++ }

func testLat() LatencyModel {
	return LatencyModel{L1Hit: 18, L2Hit: 154, DRAM: 254, Icnt: 8}
}

func newTestSM(t *testing.T) (*SM, *mockBackend, *stats.Collector) {
	t.Helper()
	mb := &mockBackend{}
	col := stats.New()
	s, err := New(0, DefaultConfig(), testLat(), mb, col)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, mb, col
}

func mustKernel(t *testing.T, src string) *ptx.Kernel {
	t.Helper()
	prog, err := ptx.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog.Kernels[0]
}

// launchOn sets up a kernel context and assigns CTA 0 to the SM.
func launchOn(t *testing.T, s *SM, k *ptx.Kernel, block int, params ...uint32) *emu.Launch {
	t.Helper()
	l := &emu.Launch{Kernel: k, Grid: emu.Dim1(1), Block: emu.Dim1(block), Params: params}
	if err := l.Validate(); err != nil {
		t.Fatalf("launch: %v", err)
	}
	env := &emu.Env{Mem: mem.New(), Launch: l}
	s.SetKernel(env, k.Name, nil)
	if !s.CanAccept(l) {
		t.Fatalf("SM cannot accept CTA")
	}
	s.LaunchCTA(l, 0)
	return l
}

// run advances the SM until idle or maxCycles.
func run(t *testing.T, s *SM, maxCycles int64) int64 {
	t.Helper()
	for cyc := int64(0); cyc < maxCycles; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatalf("Step(%d): %v", cyc, err)
		}
		if s.Idle() {
			return cyc
		}
	}
	t.Fatalf("SM not idle after %d cycles", maxCycles)
	return 0
}

func TestALUOnlyKernelRetires(t *testing.T) {
	s, mb, _ := newTestSM(t)
	k := mustKernel(t, `
.kernel alu
    mov.u32 %r0, 1;
    add.u32 %r1, %r0, 2;
    mul.u32 %r2, %r1, %r1;
    exit;
`)
	launchOn(t, s, k, 64)
	run(t, s, 1000)
	if mb.finished != 1 {
		t.Errorf("CTAFinished calls = %d, want 1", mb.finished)
	}
	if s.LiveCTAs() != 0 {
		t.Errorf("LiveCTAs = %d, want 0", s.LiveCTAs())
	}
	// Two warps executed 4 instructions each.
	if s.InstructionsIssued != 8 {
		t.Errorf("InstructionsIssued = %d, want 8", s.InstructionsIssued)
	}
}

func TestScoreboardBlocksRAW(t *testing.T) {
	s, _, _ := newTestSM(t)
	k := mustKernel(t, `
.kernel raw
    mov.u32 %r0, 7;
    add.u32 %r1, %r0, 1;   // RAW on %r0
    add.u32 %r2, %r1, 1;   // RAW on %r1
    exit;
`)
	launchOn(t, s, k, 32)
	// With SPLatency 4 and back-to-back dependencies, the warp needs at
	// least ~3 × SPLatency cycles; without a scoreboard it would finish in 4.
	finished := run(t, s, 1000)
	if finished < 3*s.cfg.SPLatency {
		t.Errorf("kernel finished in %d cycles; scoreboard not enforcing RAW delays", finished)
	}
}

func TestGlobalLoadMissGoesThroughNetwork(t *testing.T) {
	s, mb, col := newTestSM(t)
	k := mustKernel(t, `
.kernel ld1
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    ld.global.u32 %r4, [%r3];
    add.u32      %r5, %r4, 1;
    exit;
`)
	launchOn(t, s, k, 32, 4096)
	// Drive until the load is injected.
	for cyc := int64(0); cyc < 100 && len(mb.injected) == 0; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 1 {
		t.Fatalf("injected = %d requests, want 1 (fully coalesced)", len(mb.injected))
	}
	r := mb.injected[0]
	if r.Block != 4096 || r.Kind != memreq.Load {
		t.Errorf("request = %+v", r)
	}
	// Answer the miss; the warp must then finish.
	r.Serviced = memreq.LvlDRAM
	s.HandleReply(r, 500)
	for cyc := int64(501); cyc < 1000; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
		if s.Idle() {
			break
		}
	}
	if !s.Idle() {
		t.Fatalf("SM not idle after reply")
	}
	if col.Turnaround[stats.Det].Ops != 1 {
		t.Errorf("turnaround ops = %d, want 1", col.Turnaround[stats.Det].Ops)
	}
	if got := col.Turnaround[stats.Det].Total; got < 400 {
		t.Errorf("turnaround %d cycles, want > 400 (reply at cycle 500)", got)
	}
}

func TestL1HitAfterFill(t *testing.T) {
	s, mb, col := newTestSM(t)
	k := mustKernel(t, `
.kernel ld2
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    ld.global.u32 %r4, [%r3];
    add.u32      %r6, %r4, 1;   // stall on the first load's data
    ld.global.u32 %r5, [%r3];   // second access: L1 hit after the fill
    exit;
`)
	launchOn(t, s, k, 32, 8192)
	for cyc := int64(0); cyc < 50; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 1 {
		t.Fatalf("injected = %d, want 1 (second load must not miss)", len(mb.injected))
	}
	r := mb.injected[0]
	r.Serviced = memreq.LvlL2
	s.HandleReply(r, 100)
	run(t, s, 1000)
	if col.L1Outcomes[stats.Det][0] == 0 { // cache.Hit == 0
		t.Errorf("no L1 hits recorded; outcomes = %v", col.L1Outcomes[stats.Det])
	}
}

func TestStoresInjectWithoutReply(t *testing.T) {
	s, mb, _ := newTestSM(t)
	k := mustKernel(t, `
.kernel st1
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    st.global.u32 [%r3], %r0;
    exit;
`)
	launchOn(t, s, k, 32, 4096)
	run(t, s, 1000) // must retire without any reply
	if len(mb.injected) != 1 || mb.injected[0].Kind != memreq.Store {
		t.Fatalf("injected = %+v, want one store", mb.injected)
	}
}

func TestBlockedNetworkStallsAndRecovers(t *testing.T) {
	s, mb, col := newTestSM(t)
	mb.blocked = true
	k := mustKernel(t, `
.kernel ld3
.param .u32 a
    ld.param.u32 %r0, [a];
    ld.global.u32 %r1, [%r0];
    exit;
`)
	launchOn(t, s, k, 32, 4096)
	for cyc := int64(0); cyc < 50; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 0 {
		t.Fatalf("injected despite blocked network")
	}
	// Reservation failures by interconnect must be recorded (Fig 3).
	if col.L1Outcomes[stats.Det][5] == 0 { // cache.RsrvFailICNT == 5
		t.Errorf("no rsrv-fail-icnt outcomes: %v", col.L1Outcomes[stats.Det])
	}
	mb.blocked = false
	for cyc := int64(50); cyc < 100 && len(mb.injected) == 0; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 1 {
		t.Fatalf("retry did not inject after unblocking")
	}
}

func TestBarrierSynchronizesWarps(t *testing.T) {
	s, _, _ := newTestSM(t)
	// Two warps; barrier in the middle. The kernel writes shared memory
	// before the barrier and reads another warp's slot after it.
	k := mustKernel(t, `
.kernel bar1
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 2;
    st.shared.u32 [%r1], %r0;
    bar.sync;
    mov.u32      %r2, 63;
    sub.u32      %r3, %r2, %r0;     // partner lane
    shl.u32      %r4, %r3, 2;
    ld.shared.u32 %r5, [%r4];
    exit;
`)
	k.SharedBytes = 64 * 4
	launchOn(t, s, k, 64)
	run(t, s, 5000)
	// Completion is the assertion: a broken barrier protocol would deadlock
	// (run fails after maxCycles).
}

func TestUncoalescedLoadGeneratesManyRequests(t *testing.T) {
	s, mb, col := newTestSM(t)
	k := mustKernel(t, `
.kernel scatter
.param .u32 a
    mov.u32      %r0, %tid.x;
    shl.u32      %r1, %r0, 7;       // tid*128: one block per lane
    ld.param.u32 %r2, [a];
    add.u32      %r3, %r2, %r1;
    ld.global.u32 %r4, [%r3];
    exit;
`)
	launchOn(t, s, k, 32, 1<<20)
	for cyc := int64(0); cyc < 200; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	// One access can be presented to the L1 per cycle, so 32 requests need
	// at least 32 cycles to issue — the paper's serialization effect.
	if len(mb.injected) != 32 {
		t.Fatalf("injected = %d, want 32", len(mb.injected))
	}
	if col.Requests[stats.Det] != 32 {
		t.Errorf("requests recorded = %d, want 32", col.Requests[stats.Det])
	}
	first, last := mb.injected[0], mb.injected[31]
	if last.AcceptedL1-first.AcceptedL1 < 31 {
		t.Errorf("acceptance spread = %d cycles, want >= 31 (one per cycle)",
			last.AcceptedL1-first.AcceptedL1)
	}
}

func TestNonDetBypassSkipsL1(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NonDetBypassL1 = true
	mb := &mockBackend{}
	col := stats.New()
	s, err := New(0, cfg, testLat(), mb, col)
	if err != nil {
		t.Fatal(err)
	}
	k := mustKernel(t, `
.kernel bypass
.param .u32 a
    ld.param.u32 %r0, [a];
    ld.global.u32 %r1, [%r0];   // deterministic: normal L1 path
    ld.global.u32 %r2, [%r1];   // non-deterministic: bypasses the L1
    exit;
`)
	l := &emu.Launch{Kernel: k, Grid: emu.Dim1(1), Block: emu.Dim1(32), Params: []uint32{4096}}
	env := &emu.Env{Mem: mem.New(), Launch: l}
	env.Mem.Write32(4096, 8192)
	classify := func(pc uint32) bool { return pc == k.Insts[2].PC }
	s.SetKernel(env, "bypass", classify)
	s.LaunchCTA(l, 0)

	for cyc := int64(0); cyc < 100 && len(mb.injected) < 1; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 1 || mb.injected[0].BypassL1 {
		t.Fatalf("first (deterministic) load must use the L1 path")
	}
	mb.injected[0].Serviced = memreq.LvlDRAM
	s.HandleReply(mb.injected[0], 200)
	for cyc := int64(201); cyc < 400 && len(mb.injected) < 2; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
	}
	if len(mb.injected) != 2 {
		t.Fatalf("non-deterministic load never injected")
	}
	r := mb.injected[1]
	if !r.BypassL1 {
		t.Fatalf("non-deterministic load did not bypass the L1")
	}
	if s.L1.PendingMisses() != 0 {
		t.Errorf("bypassed load allocated an MSHR")
	}
	r.Serviced = memreq.LvlDRAM
	s.HandleReply(r, 500)
	for cyc := int64(501); cyc < 1000; cyc++ {
		if err := s.Step(cyc); err != nil {
			t.Fatal(err)
		}
		if s.Idle() {
			return
		}
	}
	t.Fatalf("SM did not retire after bypass reply")
}

func TestCTAResourceAccounting(t *testing.T) {
	s, _, _ := newTestSM(t)
	k := mustKernel(t, `
.kernel big
    mov.u32 %r0, 1;
    exit;
`)
	k.SharedBytes = 20 * 1024 // two CTAs exhaust the 48 KB shared memory
	l := &emu.Launch{Kernel: k, Grid: emu.Dim1(4), Block: emu.Dim1(64), Params: nil}
	env := &emu.Env{Mem: mem.New(), Launch: l}
	s.SetKernel(env, "big", nil)
	n := 0
	for s.CanAccept(l) {
		s.LaunchCTA(l, n)
		n++
	}
	if n != 2 {
		t.Errorf("accepted %d CTAs, want 2 (shared-memory limit)", n)
	}
	run(t, s, 1000)
	if !s.CanAccept(l) {
		t.Errorf("resources not released after CTA retirement")
	}
}

func TestSchedulerPoliciesBothFinish(t *testing.T) {
	for _, pol := range []Policy{LRR, GTO} {
		cfg := DefaultConfig()
		cfg.Policy = pol
		mb := &mockBackend{}
		s, err := New(0, cfg, testLat(), mb, stats.New())
		if err != nil {
			t.Fatal(err)
		}
		k := mustKernel(t, `
.kernel p
    mov.u32 %r0, 0;
LOOP:
    add.u32 %r0, %r0, 1;
    setp.lt.u32 %p0, %r0, 50;
@%p0 bra LOOP;
    exit;
`)
		l := &emu.Launch{Kernel: k, Grid: emu.Dim1(1), Block: emu.Dim1(256)}
		env := &emu.Env{Mem: mem.New(), Launch: l}
		s.SetKernel(env, "p", nil)
		s.LaunchCTA(l, 0)
		run(t, s, 100000)
		if s.InstructionsIssued == 0 {
			t.Errorf("%v: nothing issued", pol)
		}
	}
}

func TestUnitOccupancyTracked(t *testing.T) {
	s, _, col := newTestSM(t)
	k := mustKernel(t, `
.kernel sfu
    mov.f32 %r0, 2.0;
    sqrt.f32 %r1, %r0;
    sqrt.f32 %r2, %r1;
    exit;
`)
	launchOn(t, s, k, 32)
	run(t, s, 1000)
	if col.UnitBusy[isa.UnitSFU] == 0 {
		t.Errorf("SFU occupancy never recorded")
	}
	if col.SMCycles == 0 {
		t.Errorf("SM cycles not recorded")
	}
}

// TestMemQuietAt pins the adaptive controller's occupancy probe against the
// stall cache: quiet exactly while StepMem would freeze, never quiet without
// fast-forward (the cache stays 0), and re-armed the moment work arrives.
func TestMemQuietAt(t *testing.T) {
	s, _, _ := newTestSM(t)
	if s.MemQuietAt(0) {
		t.Error("quiet without fast-forward (stall cache disabled)")
	}
	s.stallUntil = 10
	if !s.MemQuietAt(5) {
		t.Error("not quiet inside the stall window")
	}
	if got := s.StepMem(5); !got {
		t.Error("StepMem did not freeze where MemQuietAt reported quiet")
	}
	if s.MemQuietAt(10) {
		t.Error("quiet at the stall deadline")
	}
	// LaunchCTA resets the cache: fresh warps may issue immediately.
	s.stallUntil = 100
	k := mustKernel(t, `
.kernel alu
    mov.u32 %r0, 1;
    exit;
`)
	launchOn(t, s, k, 32)
	if s.MemQuietAt(5) {
		t.Error("quiet right after a CTA launch")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NumSchedulers = 0
	if _, err := New(0, bad, testLat(), &mockBackend{}, stats.New()); err == nil {
		t.Errorf("invalid config accepted")
	}
	if _, err := New(0, DefaultConfig(), testLat(), nil, stats.New()); err == nil {
		t.Errorf("nil backend accepted")
	}
}
