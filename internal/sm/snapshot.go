package sm

import (
	"critload/internal/checkpoint"
	"critload/internal/isa"
)

// snapTag marks one SM section of a checkpoint payload.
const snapTag = 0x534D3030 // "SM00"

// Snapshot serializes the SM state that persists across kernel-launch
// boundaries: the private L1 (tags, LRU timestamps, outcome counters), the
// function-unit busy horizons (an instruction issued near the end of a launch
// can occupy a unit past the boundary), the scheduler cursors and warp-age
// counter (they decide future scheduling order), the stall cache, and the
// monotonic counters. Everything else — warps, CTAs, the LD/ST queue, event
// queues, in-flight requests — is empty at a boundary by the drain contract,
// and snapshotting a busy SM is a caller bug.
func (s *SM) Snapshot(w *checkpoint.Writer) {
	if !s.Idle() || len(s.ctas) != 0 || len(s.outstanding) != 0 {
		panic("sm: snapshot of a busy SM")
	}
	w.Tag(snapTag)
	s.L1.Snapshot(w)
	w.Int(len(s.unitBusyUntil))
	for u := range s.unitBusyUntil {
		w.I64(s.unitBusyUntil[u])
	}
	w.Int(len(s.rr))
	for _, v := range s.rr {
		w.Int(v)
	}
	w.Int(s.age)
	w.I64(s.lastIssue)
	w.I64(s.stallUntil)
	w.U64(s.nextReqID)
	w.U64(s.InstructionsIssued)
}

// Restore loads a snapshot into an identically-configured, idle SM.
func (s *SM) Restore(r *checkpoint.Reader) error {
	if !s.Idle() || len(s.ctas) != 0 || len(s.outstanding) != 0 {
		r.Failf("sm: restore into a busy SM")
		return r.Err()
	}
	r.Tag(snapTag)
	if err := s.L1.Restore(r); err != nil {
		return err
	}
	if n := r.Int(); r.Err() == nil && n != int(isa.NumFuncUnits) {
		r.Failf("sm: snapshot has %d function units, want %d", n, int(isa.NumFuncUnits))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for u := range s.unitBusyUntil {
		s.unitBusyUntil[u] = r.I64()
	}
	if n := r.Int(); r.Err() == nil && n != len(s.rr) {
		r.Failf("sm: snapshot has %d schedulers, SM has %d", n, len(s.rr))
	}
	if err := r.Err(); err != nil {
		return err
	}
	for i := range s.rr {
		s.rr[i] = r.Int()
	}
	s.age = r.Int()
	s.lastIssue = r.I64()
	s.stallUntil = r.I64()
	s.nextReqID = r.U64()
	s.InstructionsIssued = r.U64()
	return r.Err()
}
