package sm

import (
	"bytes"
	"strings"
	"testing"

	"critload/internal/checkpoint"
)

func snapBytes(t *testing.T, s *SM) []byte {
	t.Helper()
	w := checkpoint.NewWriter()
	s.Snapshot(w)
	return w.Bytes()
}

// TestSnapshotRoundTrip checks that the state persisting across kernel
// boundaries — function-unit horizons, scheduler cursors, warp-age counter,
// stall cache and monotonic counters — survives a restore into a fresh SM
// byte for byte.
func TestSnapshotRoundTrip(t *testing.T) {
	src, _, _ := newTestSM(t)
	src.unitBusyUntil[0] = 57
	src.unitBusyUntil[len(src.unitBusyUntil)-1] = 91
	for i := range src.rr {
		src.rr[i] = i + 1
	}
	src.age = 17
	src.lastIssue = 204
	src.stallUntil = 250
	src.nextReqID = 99
	src.InstructionsIssued = 12345

	b1 := snapBytes(t, src)
	dst, _, _ := newTestSM(t)
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if b2 := snapBytes(t, dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(b1), len(b2))
	}
	if dst.unitBusyUntil[0] != 57 || dst.age != 17 || dst.lastIssue != 204 ||
		dst.stallUntil != 250 || dst.nextReqID != 99 || dst.InstructionsIssued != 12345 {
		t.Errorf("state not restored: %+v", dst.unitBusyUntil)
	}
	for i := range dst.rr {
		if dst.rr[i] != i+1 {
			t.Errorf("rr[%d] = %d, want %d", i, dst.rr[i], i+1)
		}
	}
}

// TestSnapshotPanicsOnBusySM checks the boundary invariant: an SM holding a
// CTA refuses to serialize.
func TestSnapshotPanicsOnBusySM(t *testing.T) {
	s, _, _ := newTestSM(t)
	s.ctas = append(s.ctas, &ctaCtx{})
	defer func() {
		if recover() == nil {
			t.Fatal("Snapshot of a busy SM did not panic")
		}
	}()
	s.Snapshot(checkpoint.NewWriter())
}

// TestRestoreRejections covers the refusal paths: a busy receiver, a payload
// with a foreign scheduler count, and truncation.
func TestRestoreRejections(t *testing.T) {
	src, _, _ := newTestSM(t)
	good := snapBytes(t, src)

	busy, _, _ := newTestSM(t)
	busy.outstanding[&memOp{}] = 1
	if err := busy.Restore(checkpoint.NewReader(good)); err == nil || !strings.Contains(err.Error(), "busy") {
		t.Errorf("busy restore: %v", err)
	}

	dst, _, _ := newTestSM(t)
	if err := dst.Restore(checkpoint.NewReader(good[:len(good)-8])); err == nil {
		t.Error("truncated payload accepted")
	}
}
