package stats

import (
	"reflect"
	"testing"

	"critload/internal/cache"
	"critload/internal/isa"
)

// fillTiming populates a collector through the timing-path recording APIs
// only — the population a parallel-engine shard can legally carry.
func fillTiming(seed uint64) *Collector {
	c := New()
	c.WarpInsts = seed
	c.ThreadInsts = seed * 32
	c.SLoadWarps = seed + 1
	c.GStoreWarps = seed + 2
	c.Prefetches = seed % 3
	c.RecordSMCycles(10 * seed)
	c.RecordUnitCycles(isa.UnitLDST, 3*seed)
	c.RecordUnitCycle(isa.UnitSP, true)
	c.RecordL1Outcome(Det, cache.Hit)
	c.RecordL1Outcome(NonDet, cache.Miss)
	c.RecordL1Outcome(NonDet, cache.RsrvFailICNT)
	c.RecordL2Outcome(Det, cache.Miss, int(seed))
	c.RecordL2Outcome(NonDet, cache.Hit, int(seed)+1)
	c.RecordLoadOp(LoadOpRecord{
		Kernel: "k", PC: 8, NonDet: seed%2 == 1, NReq: int(seed%4) + 1,
		Total: int64(100 * seed), Unloaded: int64(40 * seed),
		RsrvPrev: int64(5 * seed), RsrvCurr: int64(2 * seed),
		GapIcntL2: int64(seed), GapL2Icnt: int64(seed),
	})
	c.GLoadWarps[Det] = seed
	c.GLoadThreads[Det] = 32 * seed
	c.Requests[NonDet] = 2 * seed
	return c
}

// TestMergeEqualsSerialAccumulation is the parallel engine's reduction
// contract: recording into shards and merging must equal recording everything
// into one collector, regardless of how the records were split.
func TestMergeEqualsSerialAccumulation(t *testing.T) {
	// One collector that saw everything.
	serial := New()
	serial.Merge(fillTiming(3))
	serial.Merge(fillTiming(7))
	serial.Merge(fillTiming(11))

	// The same records split across shards, merged in a different order.
	merged := New()
	for _, seed := range []uint64{11, 3, 7} {
		merged.Merge(fillTiming(seed))
	}
	if !reflect.DeepEqual(serial, merged) {
		t.Fatalf("merge is order-dependent:\n serial: %+v\n merged: %+v", serial, merged)
	}
	// Spot-check a per-PC bucket actually merged rather than overwrote.
	p := merged.PerPC[PCKey{Kernel: "k", PC: 8}]
	if p == nil {
		t.Fatal("PerPC entry lost in merge")
	}
	var ops uint64
	for _, g := range p.ByNReq {
		ops += g.Ops
	}
	if ops != 3 {
		t.Fatalf("PerPC ops = %d, want 3", ops)
	}
}

// TestMergePanicsOnFunctionalBlockData: the block map's first/last-CTA fields
// are observation-order dependent, so a shard carrying them must be rejected
// loudly instead of folded in.
func TestMergePanicsOnFunctionalBlockData(t *testing.T) {
	src := New()
	src.observeBlock(0, 128, Det)
	defer func() {
		if recover() == nil {
			t.Fatal("Merge accepted a collector with functional-path block data")
		}
	}()
	New().Merge(src)
}

// TestReset returns a collector to its constructed state in place, so shard
// pointers held by SMs and partitions stay valid across launches.
func TestReset(t *testing.T) {
	c := fillTiming(5)
	c.Reset()
	if !reflect.DeepEqual(c, New()) {
		t.Fatalf("Reset left residue: %+v", c)
	}
	// The maps must be usable after Reset, not nil.
	c.RecordLoadOp(LoadOpRecord{Kernel: "k", PC: 0, NReq: 1, Total: 1})
	if len(c.PerPC) != 1 {
		t.Fatal("collector unusable after Reset")
	}
}
