package stats

import (
	"sort"

	"critload/internal/checkpoint"
)

// snapTag marks the collector section of a checkpoint payload.
const snapTag = 0x53544154 // "STAT"

// Snapshot serializes every statistic — exported counters, the per-PC map,
// and the unexported block-access map — so a restored collector is
// reflect.DeepEqual-identical to the original, which is exactly what the
// difftest oracles compare. All maps are written in sorted key order (the
// store is content-addressed) and the lazily-allocated per-block CTA set
// encodes its nil-versus-allocated state explicitly.
func (c *Collector) Snapshot(w *checkpoint.Writer) {
	w.Tag(snapTag)
	w.U64(c.WarpInsts)
	w.U64(c.ThreadInsts)
	w.U64(c.SLoadWarps)
	w.U64(c.GStoreWarps)
	w.U64(c.Prefetches)
	w.U64(c.SMCycles)
	w.I64(c.GPUCycles)
	w.U64(c.BlockLoadReqs)
	for cat := 0; cat < int(NumCats); cat++ {
		w.U64(c.GLoadWarps[cat])
		w.U64(c.GLoadThreads[cat])
		w.U64(c.Requests[cat])
		w.U64(c.L1Acc[cat])
		w.U64(c.L1Miss[cat])
		w.U64(c.L2Acc[cat])
		w.U64(c.L2Miss[cat])
		for o := range c.L1Outcomes[cat] {
			w.U64(c.L1Outcomes[cat][o])
		}
		t := &c.Turnaround[cat]
		w.U64(t.Ops)
		w.I64(t.Total)
		w.I64(t.Unloaded)
		w.I64(t.RsrvPrev)
		w.I64(t.RsrvCurr)
		w.I64(t.MemSystem)
	}
	for u := range c.UnitBusy {
		w.U64(c.UnitBusy[u])
	}
	for s := range c.L2SliceQueries {
		w.U64(c.L2SliceQueries[s])
		w.U64(c.L2SliceHits[s])
	}

	pcKeys := make([]PCKey, 0, len(c.PerPC))
	for k := range c.PerPC {
		pcKeys = append(pcKeys, k)
	}
	sort.Slice(pcKeys, func(i, j int) bool {
		if pcKeys[i].Kernel != pcKeys[j].Kernel {
			return pcKeys[i].Kernel < pcKeys[j].Kernel
		}
		return pcKeys[i].PC < pcKeys[j].PC
	})
	w.Int(len(pcKeys))
	for _, k := range pcKeys {
		p := c.PerPC[k]
		w.Str(k.Kernel)
		w.U32(k.PC)
		w.Bool(p.NonDet)
		nreqs := make([]int, 0, len(p.ByNReq))
		for n := range p.ByNReq {
			nreqs = append(nreqs, n)
		}
		sort.Ints(nreqs)
		w.Int(len(nreqs))
		for _, n := range nreqs {
			g := p.ByNReq[n]
			w.Int(n)
			w.U64(g.Ops)
			w.I64(g.Total)
			w.I64(g.Common)
			w.I64(g.GapL1D)
			w.I64(g.GapIcntL2)
			w.I64(g.GapL2Icnt)
		}
	}

	blockAddrs := make([]uint32, 0, len(c.blocks))
	for a := range c.blocks {
		blockAddrs = append(blockAddrs, a)
	}
	sort.Slice(blockAddrs, func(i, j int) bool { return blockAddrs[i] < blockAddrs[j] })
	w.Int(len(blockAddrs))
	for _, a := range blockAddrs {
		b := c.blocks[a]
		w.U32(a)
		w.U64(b.count)
		w.I32(b.firstW)
		w.I32(b.lastW)
		w.U64(b.nonDetN)
		w.Bool(b.ctaSet != nil)
		if b.ctaSet != nil {
			ctas := make([]int32, 0, len(b.ctaSet))
			for id := range b.ctaSet {
				ctas = append(ctas, id)
			}
			sort.Slice(ctas, func(i, j int) bool { return ctas[i] < ctas[j] })
			w.Int(len(ctas))
			for _, id := range ctas {
				w.I32(id)
			}
		}
	}

	writeIntHist(w, c.CTADist)
	for cat := range c.CTADistCat {
		writeIntHist(w, c.CTADistCat[cat])
	}
}

func writeIntHist(w *checkpoint.Writer, h map[int]uint64) {
	keys := make([]int, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.Int(k)
		w.U64(h[k])
	}
}

func readIntHist(r *checkpoint.Reader, h map[int]uint64) {
	n := r.Count(16)
	for i := 0; i < n; i++ {
		k := r.Int()
		h[k] = r.U64()
	}
}

// Restore replaces the collector's contents with a snapshot. It decodes into
// a fresh collector first and installs it only on success, so a failed decode
// leaves the receiver unchanged.
func (c *Collector) Restore(r *checkpoint.Reader) error {
	nc := New()
	r.Tag(snapTag)
	nc.WarpInsts = r.U64()
	nc.ThreadInsts = r.U64()
	nc.SLoadWarps = r.U64()
	nc.GStoreWarps = r.U64()
	nc.Prefetches = r.U64()
	nc.SMCycles = r.U64()
	nc.GPUCycles = r.I64()
	nc.BlockLoadReqs = r.U64()
	for cat := 0; cat < int(NumCats); cat++ {
		nc.GLoadWarps[cat] = r.U64()
		nc.GLoadThreads[cat] = r.U64()
		nc.Requests[cat] = r.U64()
		nc.L1Acc[cat] = r.U64()
		nc.L1Miss[cat] = r.U64()
		nc.L2Acc[cat] = r.U64()
		nc.L2Miss[cat] = r.U64()
		for o := range nc.L1Outcomes[cat] {
			nc.L1Outcomes[cat][o] = r.U64()
		}
		t := &nc.Turnaround[cat]
		t.Ops = r.U64()
		t.Total = r.I64()
		t.Unloaded = r.I64()
		t.RsrvPrev = r.I64()
		t.RsrvCurr = r.I64()
		t.MemSystem = r.I64()
	}
	for u := range nc.UnitBusy {
		nc.UnitBusy[u] = r.U64()
	}
	for s := range nc.L2SliceQueries {
		nc.L2SliceQueries[s] = r.U64()
		nc.L2SliceHits[s] = r.U64()
	}

	nPC := r.Count(8)
	for i := 0; i < nPC; i++ {
		key := PCKey{Kernel: r.Str(), PC: r.U32()}
		p := &PCStats{Key: key, NonDet: r.Bool(), ByNReq: map[int]*GapAgg{}}
		nBuckets := r.Count(8 * 7)
		for j := 0; j < nBuckets; j++ {
			nreq := r.Int()
			g := &GapAgg{
				Ops: r.U64(), Total: r.I64(), Common: r.I64(),
				GapL1D: r.I64(), GapIcntL2: r.I64(), GapL2Icnt: r.I64(),
			}
			p.ByNReq[nreq] = g
		}
		if r.Err() != nil {
			return r.Err()
		}
		nc.PerPC[key] = p
	}

	nBlocks := r.Count(4 + 8 + 4 + 4 + 8 + 1)
	for i := 0; i < nBlocks; i++ {
		addr := r.U32()
		b := &blockInfo{
			count:  r.U64(),
			firstW: r.I32(),
			lastW:  r.I32(),
		}
		b.nonDetN = r.U64()
		if r.Bool() {
			nCTAs := r.Count(4)
			b.ctaSet = make(map[int32]struct{}, nCTAs)
			for j := 0; j < nCTAs; j++ {
				b.ctaSet[r.I32()] = struct{}{}
			}
		}
		if r.Err() != nil {
			return r.Err()
		}
		nc.blocks[addr] = b
	}

	readIntHist(r, nc.CTADist)
	for cat := range nc.CTADistCat {
		readIntHist(r, nc.CTADistCat[cat])
	}
	if err := r.Err(); err != nil {
		return err
	}
	*c = *nc
	return nil
}
