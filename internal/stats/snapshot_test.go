package stats

import (
	"bytes"
	"reflect"
	"testing"

	"critload/internal/checkpoint"
)

func snapBytes(c *Collector) []byte {
	w := checkpoint.NewWriter()
	c.Snapshot(w)
	return w.Bytes()
}

// populatedCollector builds a collector exercising every serialized field:
// scalar counters, per-category arrays, the per-PC gap map, block-access
// records with and without the lazily-allocated CTA set, and the histograms.
func populatedCollector() *Collector {
	c := New()
	c.WarpInsts = 10
	c.ThreadInsts = 320
	c.SLoadWarps = 2
	c.GStoreWarps = 3
	c.Prefetches = 1
	c.SMCycles = 4000
	c.GPUCycles = 900
	c.BlockLoadReqs = 40
	c.GLoadWarps[Det] = 4
	c.GLoadWarps[NonDet] = 2
	c.GLoadThreads[NonDet] = 64
	c.Requests[Det] = 8
	c.L1Acc[Det] = 8
	c.L1Miss[Det] = 3
	c.L2Acc[NonDet] = 5
	c.L2Miss[NonDet] = 1
	c.L1Outcomes[Det][0] = 6
	c.L1Outcomes[NonDet][1] = 2
	c.Turnaround[NonDet] = TurnaroundAgg{Ops: 2, Total: 500, Unloaded: 300, RsrvPrev: 40, RsrvCurr: 60, MemSystem: 100}
	c.UnitBusy[0] = 77
	c.L2SliceQueries[1] = 9
	c.L2SliceHits[1] = 4

	key := PCKey{Kernel: "k", PC: 16}
	c.PerPC[key] = &PCStats{
		Key:    key,
		NonDet: true,
		ByNReq: map[int]*GapAgg{
			1: {Ops: 2, Total: 10, Common: 4, GapL1D: 1, GapIcntL2: 2, GapL2Icnt: 3},
			4: {Ops: 1, Total: 30, Common: 8},
		},
	}

	c.blocks[128] = &blockInfo{count: 3, firstW: 1, lastW: 5, nonDetN: 2,
		ctaSet: map[int32]struct{}{0: {}, 3: {}}}
	c.blocks[256] = &blockInfo{count: 1, firstW: 2, lastW: 2} // nil ctaSet

	c.CTADist[1] = 4
	c.CTADist[3] = 1
	c.CTADistCat[NonDet][2] = 1
	return c
}

// TestSnapshotRoundTrip checks the collector's own contract: a restored
// collector is reflect.DeepEqual-identical to the original and re-serializes
// byte for byte.
func TestSnapshotRoundTrip(t *testing.T) {
	src := populatedCollector()
	b1 := snapBytes(src)

	dst := New()
	if err := dst.Restore(checkpoint.NewReader(b1)); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if !reflect.DeepEqual(src, dst) {
		t.Fatalf("restored collector differs:\nsrc %+v\ndst %+v", src, dst)
	}
	if b2 := snapBytes(dst); !bytes.Equal(b1, b2) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(b1), len(b2))
	}
}

// TestRestoreLeavesCollectorUnchangedOnError checks the decode-then-install
// contract: a truncated payload leaves the receiver exactly as it was.
func TestRestoreLeavesCollectorUnchangedOnError(t *testing.T) {
	good := snapBytes(populatedCollector())
	for _, cut := range []int{4, len(good) / 2, len(good) - 3} {
		dst := populatedCollector()
		before := snapBytes(dst)
		if err := dst.Restore(checkpoint.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncated payload (%d bytes) accepted", cut)
		}
		if !bytes.Equal(before, snapBytes(dst)) {
			t.Fatalf("failed restore at %d bytes mutated the collector", cut)
		}
	}
}
