// Package stats collects the measurements behind every table and figure of
// the paper: per-category (deterministic / non-deterministic) load and
// request counts (Fig 1, 2), L1 cache-cycle outcome breakdowns (Fig 3),
// function-unit occupancy (Fig 4), load turnaround decompositions (Fig 5-7),
// cache miss ratios (Fig 8), shared-memory usage (Fig 9), and block-level
// access maps for cold-miss and inter-CTA locality analysis (Fig 10-12).
package stats

import (
	"sort"

	"critload/internal/cache"
	"critload/internal/coalesce"
	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/mem"
)

// Category indexes the paper's two load classes.
type Category int

// Load categories.
const (
	Det Category = iota
	NonDet
	NumCats
)

func (c Category) String() string {
	if c == Det {
		return "D"
	}
	return "N"
}

// CatOf converts the non-deterministic flag to a Category.
func CatOf(nonDet bool) Category {
	if nonDet {
		return NonDet
	}
	return Det
}

// Classifier reports whether the global load at a PC of the current kernel
// is non-deterministic. Implementations come from the dataflow package.
type Classifier func(pc uint32) bool

// TurnaroundAgg accumulates the Figure 5 decomposition for one category.
type TurnaroundAgg struct {
	Ops       uint64
	Total     int64 // dispatch → writeback
	Unloaded  int64 // latency with an idle memory system
	RsrvPrev  int64 // waiting before the first request is accepted (previous warps)
	RsrvCurr  int64 // first acceptance → last acceptance (current warp's own burst)
	MemSystem int64 // remainder: icnt/L2/DRAM contention and imbalance
}

// Mean returns the four per-op mean components (unloaded, prev, curr, mem).
func (t TurnaroundAgg) Mean() (unloaded, prev, curr, memsys float64) {
	if t.Ops == 0 {
		return 0, 0, 0, 0
	}
	n := float64(t.Ops)
	return float64(t.Unloaded) / n, float64(t.RsrvPrev) / n,
		float64(t.RsrvCurr) / n, float64(t.MemSystem) / n
}

// MeanTotal returns the mean total turnaround.
func (t TurnaroundAgg) MeanTotal() float64 {
	if t.Ops == 0 {
		return 0
	}
	return float64(t.Total) / float64(t.Ops)
}

// PCKey identifies one static load instruction.
type PCKey struct {
	Kernel string
	PC     uint32
}

// GapAgg accumulates the Figure 7 gap decomposition for one (PC, request
// count) bucket.
type GapAgg struct {
	Ops       uint64
	Total     int64
	Common    int64 // unloaded latency of the slowest request
	GapL1D    int64 // dispatch → last request accepted by L1
	GapIcntL2 int64 // queueing between L1 and L2 beyond the unloaded network latency
	GapL2Icnt int64 // spread between first and last returned response
}

// PCStats aggregates the behaviour of one static load, bucketed by the
// number of memory requests its dynamic instances generated (Fig 6, 7).
type PCStats struct {
	Key    PCKey
	NonDet bool
	ByNReq map[int]*GapAgg
}

// bucket returns (allocating) the aggregation bucket for nreq.
func (p *PCStats) bucket(nreq int) *GapAgg {
	g := p.ByNReq[nreq]
	if g == nil {
		g = &GapAgg{}
		p.ByNReq[nreq] = g
	}
	return g
}

// blockInfo tracks one 128-byte block's access history.
type blockInfo struct {
	count   uint64
	firstW  int32 // first accessing CTA
	lastW   int32 // last accessing CTA (for distance recording)
	ctaSet  map[int32]struct{}
	nonDetN uint64 // accesses from non-deterministic loads
}

// Collector gathers all run statistics. It is not safe for concurrent use;
// the parallel cycle engine gives each concurrently-stepped component a
// private shard collector and reduces the shards with Merge on its serial
// phase.
type Collector struct {
	// Functional counts (Table I, Fig 1).
	WarpInsts    uint64
	ThreadInsts  uint64
	GLoadWarps   [NumCats]uint64
	SLoadWarps   uint64
	GStoreWarps  uint64
	GLoadThreads [NumCats]uint64 // executed lanes of global loads

	// Fig 2: coalesced requests per category.
	Requests [NumCats]uint64

	// Prefetches counts issued next-line prefetches (ablation only).
	Prefetches uint64

	// Fig 3: L1 access-attempt outcomes (in cycles: one attempt per cycle).
	L1Outcomes [NumCats][cache.NumOutcomes]uint64

	// Fig 4: function-unit first-stage occupancy.
	UnitBusy  [isa.NumFuncUnits]uint64
	SMCycles  uint64 // total SM-cycles observed
	GPUCycles int64  // wall-clock cycles of the timing run

	// Fig 5: turnaround decomposition.
	Turnaround [NumCats]TurnaroundAgg

	// Fig 6/7: per-PC behaviour.
	PerPC map[PCKey]*PCStats

	// Fig 8: cache accesses and misses per category.
	L1Acc, L1Miss [NumCats]uint64
	L2Acc, L2Miss [NumCats]uint64

	// Table III: per-slice L2 read counters (slice = partition id parity,
	// matching the profiler's subp0/subp1 split).
	L2SliceQueries [2]uint64
	L2SliceHits    [2]uint64

	// Fig 10-12: block-level map, collected on the functional path.
	blocks        map[uint32]*blockInfo
	BlockLoadReqs uint64 // total coalesced load requests feeding the block map
	// CTADistance histograms: overall and per category.
	CTADist    map[int]uint64
	CTADistCat [NumCats]map[int]uint64
}

// New returns an empty collector.
func New() *Collector {
	c := &Collector{
		PerPC:   map[PCKey]*PCStats{},
		blocks:  map[uint32]*blockInfo{},
		CTADist: map[int]uint64{},
	}
	for i := range c.CTADistCat {
		c.CTADistCat[i] = map[int]uint64{}
	}
	return c
}

// Merge folds src into c by summation, so that per-component shard
// collectors filled concurrently by the parallel cycle engine reduce to the
// exact collector a single serial run would have produced. Every timing-path
// statistic is a counter, a sum, or a map of sums, all of which are
// independent of merge order; GPUCycles is a plain sum too, because shards
// never set it (the engine stamps it on the root collector directly).
//
// The functional-path block map (blocks, CTADist) is *not* merge-safe: its
// first/last-CTA fields depend on observation order. Shard collectors are fed
// by the timing path only and never populate it; Merge panics if handed a
// source that did, rather than silently corrupting the Fig 10-12 artifacts.
func (c *Collector) Merge(src *Collector) {
	if len(src.blocks) > 0 || len(src.CTADist) > 0 {
		panic("stats: Merge of a collector carrying order-dependent functional-path block data")
	}
	c.WarpInsts += src.WarpInsts
	c.ThreadInsts += src.ThreadInsts
	c.SLoadWarps += src.SLoadWarps
	c.GStoreWarps += src.GStoreWarps
	c.Prefetches += src.Prefetches
	c.SMCycles += src.SMCycles
	c.GPUCycles += src.GPUCycles
	c.BlockLoadReqs += src.BlockLoadReqs
	for cat := 0; cat < int(NumCats); cat++ {
		c.GLoadWarps[cat] += src.GLoadWarps[cat]
		c.GLoadThreads[cat] += src.GLoadThreads[cat]
		c.Requests[cat] += src.Requests[cat]
		c.L1Acc[cat] += src.L1Acc[cat]
		c.L1Miss[cat] += src.L1Miss[cat]
		c.L2Acc[cat] += src.L2Acc[cat]
		c.L2Miss[cat] += src.L2Miss[cat]
		for o := range c.L1Outcomes[cat] {
			c.L1Outcomes[cat][o] += src.L1Outcomes[cat][o]
		}
		t, u := &c.Turnaround[cat], &src.Turnaround[cat]
		t.Ops += u.Ops
		t.Total += u.Total
		t.Unloaded += u.Unloaded
		t.RsrvPrev += u.RsrvPrev
		t.RsrvCurr += u.RsrvCurr
		t.MemSystem += u.MemSystem
	}
	for u := range c.UnitBusy {
		c.UnitBusy[u] += src.UnitBusy[u]
	}
	for s := range c.L2SliceQueries {
		c.L2SliceQueries[s] += src.L2SliceQueries[s]
		c.L2SliceHits[s] += src.L2SliceHits[s]
	}
	for key, sp := range src.PerPC {
		p := c.PerPC[key]
		if p == nil {
			p = &PCStats{Key: key, NonDet: sp.NonDet, ByNReq: map[int]*GapAgg{}}
			c.PerPC[key] = p
		}
		for nreq, sg := range sp.ByNReq {
			g := p.bucket(nreq)
			g.Ops += sg.Ops
			g.Total += sg.Total
			g.Common += sg.Common
			g.GapL1D += sg.GapL1D
			g.GapIcntL2 += sg.GapIcntL2
			g.GapL2Icnt += sg.GapL2Icnt
		}
	}
}

// Reset returns the collector to its freshly-constructed state, keeping the
// struct (and every pointer to it) valid; the parallel engine resets its
// shard collectors after merging them at each launch boundary.
func (c *Collector) Reset() { *c = *New() }

// ---------------------------------------------------------------------------
// Functional-path collection
// ---------------------------------------------------------------------------

// FunctionalListener returns an emu.StepListener that feeds the collector;
// classify resolves global-load PCs of the currently running kernel.
func (c *Collector) FunctionalListener(classify Classifier) emu.StepListener {
	return func(ctaID int, w *emu.Warp, s *emu.Step) {
		c.ObserveStep(ctaID, s, classify)
	}
}

// ObserveStep records one executed warp instruction from the functional
// driver.
func (c *Collector) ObserveStep(ctaID int, s *emu.Step, classify Classifier) {
	c.WarpInsts++
	c.ThreadInsts += uint64(s.ExecCount())
	in := s.Inst
	switch {
	case in.IsGlobalLoad():
		cat := Det
		if classify != nil && classify(in.PC) {
			cat = NonDet
		}
		c.GLoadWarps[cat]++
		c.GLoadThreads[cat] += uint64(s.ExecCount())
		accs := coalesce.Coalesce(s.Exec, &s.Addrs)
		c.Requests[cat] += uint64(len(accs))
		for _, a := range accs {
			c.observeBlock(ctaID, a.Block, cat)
		}
	case in.IsSharedLoad():
		c.SLoadWarps++
	case in.Op == isa.OpSt && in.Space == isa.SpaceGlobal:
		c.GStoreWarps++
	}
}

func (c *Collector) observeBlock(ctaID int, block uint32, cat Category) {
	c.BlockLoadReqs++
	b := c.blocks[block]
	if b == nil {
		b = &blockInfo{firstW: int32(ctaID), lastW: int32(ctaID)}
		c.blocks[block] = b
	}
	b.count++
	if cat == NonDet {
		b.nonDetN++
	}
	if int32(ctaID) != b.lastW {
		d := int(int32(ctaID) - b.lastW)
		if d < 0 {
			d = -d
		}
		c.CTADist[d]++
		c.CTADistCat[cat][d]++
		if b.ctaSet == nil {
			b.ctaSet = map[int32]struct{}{b.firstW: {}}
		}
		b.ctaSet[int32(ctaID)] = struct{}{}
		b.lastW = int32(ctaID)
	}
}

// ---------------------------------------------------------------------------
// Timing-path collection
// ---------------------------------------------------------------------------

// RecordL1Outcome counts one L1 access attempt (one cache cycle).
func (c *Collector) RecordL1Outcome(cat Category, o cache.Outcome) {
	c.L1Outcomes[cat][o]++
	switch o {
	case cache.Hit:
		c.L1Acc[cat]++
	case cache.Miss, cache.HitReserved:
		c.L1Acc[cat]++
		c.L1Miss[cat]++
	}
}

// RecordL2Outcome counts one L2 access (accepted accesses only feed the miss
// ratio; retried reservation failures are not re-counted). slice is the L2
// slice (partition parity) for the Table III sector counters.
func (c *Collector) RecordL2Outcome(cat Category, o cache.Outcome, slice int) {
	slice &= 1
	switch o {
	case cache.Hit:
		c.L2Acc[cat]++
		c.L2SliceQueries[slice]++
		c.L2SliceHits[slice]++
	case cache.Miss, cache.HitReserved:
		c.L2Acc[cat]++
		c.L2Miss[cat]++
		c.L2SliceQueries[slice]++
	}
}

// RecordUnitCycle accumulates one SM-cycle of occupancy state for a unit.
func (c *Collector) RecordUnitCycle(u isa.FuncUnit, busy bool) {
	if busy {
		c.UnitBusy[u]++
	}
}

// RecordSMCycle counts one SM-cycle (denominator for Fig 4).
func (c *Collector) RecordSMCycle() { c.SMCycles++ }

// RecordSMCycles counts n SM-cycles at once; the fast-forward engine uses it
// to account a skipped window exactly as n RecordSMCycle calls would have.
func (c *Collector) RecordSMCycles(n uint64) { c.SMCycles += n }

// RecordUnitCycles accumulates n busy SM-cycles for a unit at once (the
// batch counterpart of RecordUnitCycle for fast-forwarded windows).
func (c *Collector) RecordUnitCycles(u isa.FuncUnit, n uint64) { c.UnitBusy[u] += n }

// LoadOpRecord summarizes one completed warp-level global load for the
// turnaround statistics.
type LoadOpRecord struct {
	Kernel   string
	PC       uint32
	NonDet   bool
	NReq     int
	Total    int64
	Unloaded int64
	RsrvPrev int64
	RsrvCurr int64
	// Gap components (Fig 7).
	GapIcntL2 int64
	GapL2Icnt int64
}

// RecordLoadOp folds one completed load op into the Fig 5/6/7 aggregates.
func (c *Collector) RecordLoadOp(r LoadOpRecord) {
	cat := CatOf(r.NonDet)
	memsys := r.Total - r.Unloaded - r.RsrvPrev - r.RsrvCurr
	if memsys < 0 {
		memsys = 0
	}
	t := &c.Turnaround[cat]
	t.Ops++
	t.Total += r.Total
	t.Unloaded += r.Unloaded
	t.RsrvPrev += r.RsrvPrev
	t.RsrvCurr += r.RsrvCurr
	t.MemSystem += memsys

	key := PCKey{Kernel: r.Kernel, PC: r.PC}
	p := c.PerPC[key]
	if p == nil {
		p = &PCStats{Key: key, NonDet: r.NonDet, ByNReq: map[int]*GapAgg{}}
		c.PerPC[key] = p
	}
	g := p.bucket(r.NReq)
	g.Ops++
	g.Total += r.Total
	g.Common += r.Unloaded
	g.GapL1D += r.RsrvPrev + r.RsrvCurr
	g.GapIcntL2 += r.GapIcntL2
	g.GapL2Icnt += r.GapL2Icnt
}

// ---------------------------------------------------------------------------
// Derived metrics
// ---------------------------------------------------------------------------

// RequestsPerWarp returns Fig 2's requests per global-load warp instruction
// for a category.
func (c *Collector) RequestsPerWarp(cat Category) float64 {
	if c.GLoadWarps[cat] == 0 {
		return 0
	}
	return float64(c.Requests[cat]) / float64(c.GLoadWarps[cat])
}

// RequestsPerActiveThread returns Fig 2's requests per active thread.
func (c *Collector) RequestsPerActiveThread(cat Category) float64 {
	if c.GLoadThreads[cat] == 0 {
		return 0
	}
	return float64(c.Requests[cat]) / float64(c.GLoadThreads[cat])
}

// LoadFraction returns Fig 1's fraction of global-load warps that are
// non-deterministic (and its complement).
func (c *Collector) LoadFraction() (det, nondet float64) {
	total := c.GLoadWarps[Det] + c.GLoadWarps[NonDet]
	if total == 0 {
		return 0, 0
	}
	return float64(c.GLoadWarps[Det]) / float64(total),
		float64(c.GLoadWarps[NonDet]) / float64(total)
}

// MissRatio returns misses/accesses, or 0 when there were no accesses.
func MissRatio(miss, acc uint64) float64 {
	if acc == 0 {
		return 0
	}
	return float64(miss) / float64(acc)
}

// UnitIdleFraction returns Fig 4's idle fraction for a unit.
func (c *Collector) UnitIdleFraction(u isa.FuncUnit) float64 {
	if c.SMCycles == 0 {
		return 0
	}
	return 1 - float64(c.UnitBusy[u])/float64(c.SMCycles)
}

// L1CycleBreakdown returns Fig 3's normalized breakdown over all L1 access
// attempts (both categories combined), indexed by cache.Outcome.
func (c *Collector) L1CycleBreakdown() [cache.NumOutcomes]float64 {
	var out [cache.NumOutcomes]float64
	var total uint64
	for cat := Category(0); cat < NumCats; cat++ {
		for o := 0; o < int(cache.NumOutcomes); o++ {
			total += c.L1Outcomes[cat][o]
		}
	}
	if total == 0 {
		return out
	}
	for o := 0; o < int(cache.NumOutcomes); o++ {
		var sum uint64
		for cat := Category(0); cat < NumCats; cat++ {
			sum += c.L1Outcomes[cat][o]
		}
		out[o] = float64(sum) / float64(total)
	}
	return out
}

// BlockSummary is the Fig 10/11 aggregate over the block access map.
type BlockSummary struct {
	DistinctBlocks     uint64
	TotalLoadRequests  uint64
	ColdMissRatio      float64 // distinct blocks / total requests
	MeanAccessPerBlock float64
	SharedBlocks       uint64  // blocks touched by ≥2 CTAs
	SharedBlockRatio   float64 // shared blocks / distinct blocks
	SharedAccessRatio  float64 // accesses to shared blocks / total accesses
	MeanCTAsPerShared  float64 // average CTA count over shared blocks
	NonDetAccessRatio  float64 // block accesses from non-deterministic loads
}

// Blocks computes the Fig 10/11 summary.
func (c *Collector) Blocks() BlockSummary {
	var s BlockSummary
	s.DistinctBlocks = uint64(len(c.blocks))
	s.TotalLoadRequests = c.BlockLoadReqs
	if s.TotalLoadRequests > 0 {
		s.ColdMissRatio = float64(s.DistinctBlocks) / float64(s.TotalLoadRequests)
	}
	if s.DistinctBlocks > 0 {
		s.MeanAccessPerBlock = float64(s.TotalLoadRequests) / float64(s.DistinctBlocks)
	}
	var sharedAccesses, ctaSum, nonDet uint64
	for _, b := range c.blocks {
		nonDet += b.nonDetN
		if len(b.ctaSet) >= 2 {
			s.SharedBlocks++
			sharedAccesses += b.count
			ctaSum += uint64(len(b.ctaSet))
		}
	}
	if s.TotalLoadRequests > 0 {
		s.NonDetAccessRatio = float64(nonDet) / float64(s.TotalLoadRequests)
	}
	if s.DistinctBlocks > 0 {
		s.SharedBlockRatio = float64(s.SharedBlocks) / float64(s.DistinctBlocks)
	}
	if s.TotalLoadRequests > 0 {
		s.SharedAccessRatio = float64(sharedAccesses) / float64(s.TotalLoadRequests)
	}
	if s.SharedBlocks > 0 {
		s.MeanCTAsPerShared = float64(ctaSum) / float64(s.SharedBlocks)
	}
	return s
}

// DistanceBin is one (distance, weight) pair of the Fig 12 histogram.
type DistanceBin struct {
	Distance int
	Count    uint64
	Fraction float64
}

// CTADistanceHistogram returns the Fig 12 histogram sorted by distance.
func (c *Collector) CTADistanceHistogram() []DistanceBin {
	return histToBins(c.CTADist)
}

// CTADistanceHistogramFor returns the per-category histogram.
func (c *Collector) CTADistanceHistogramFor(cat Category) []DistanceBin {
	return histToBins(c.CTADistCat[cat])
}

func histToBins(h map[int]uint64) []DistanceBin {
	var total uint64
	for _, n := range h {
		total += n
	}
	out := make([]DistanceBin, 0, len(h))
	for d, n := range h {
		b := DistanceBin{Distance: d, Count: n}
		if total > 0 {
			b.Fraction = float64(n) / float64(total)
		}
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Distance < out[j].Distance })
	return out
}

// BlockAddrOf re-exports the block granularity used by the collector so
// callers do not need to import mem for alignment.
func BlockAddrOf(addr uint32) uint32 { return mem.BlockAddr(addr) }
