package stats

import (
	"testing"
	"testing/quick"

	"critload/internal/cache"
	"critload/internal/emu"
	"critload/internal/isa"
	"critload/internal/ptx"
)

// stepFor builds a Step for a global load with the given lane addresses.
func stepFor(t *testing.T, addrs []uint32) *emu.Step {
	t.Helper()
	prog, err := ptx.Parse(`
.kernel k
    ld.global.u32 %r0, [%r1];
    exit;
`)
	if err != nil {
		t.Fatal(err)
	}
	s := &emu.Step{Inst: prog.Kernels[0].Insts[0], Mem: true}
	for i, a := range addrs {
		s.Addrs[i] = a
		s.Exec |= 1 << i
	}
	s.Active = s.Exec
	return s
}

func TestObserveStepCountsByCategory(t *testing.T) {
	c := New()
	s := stepFor(t, []uint32{0, 4, 8, 12})
	c.ObserveStep(0, s, nil) // nil classifier → deterministic
	c.ObserveStep(0, s, func(pc uint32) bool { return true })

	if c.GLoadWarps[Det] != 1 || c.GLoadWarps[NonDet] != 1 {
		t.Errorf("load warps = %v/%v", c.GLoadWarps[Det], c.GLoadWarps[NonDet])
	}
	if c.Requests[Det] != 1 || c.Requests[NonDet] != 1 {
		t.Errorf("requests = %v/%v (4 lanes in one block)", c.Requests[Det], c.Requests[NonDet])
	}
	if c.GLoadThreads[Det] != 4 {
		t.Errorf("thread loads = %d, want 4", c.GLoadThreads[Det])
	}
	if got := c.RequestsPerWarp(Det); got != 1 {
		t.Errorf("RequestsPerWarp = %v, want 1", got)
	}
	if got := c.RequestsPerActiveThread(Det); got != 0.25 {
		t.Errorf("RequestsPerActiveThread = %v, want 0.25", got)
	}
	det, nondet := c.LoadFraction()
	if det != 0.5 || nondet != 0.5 {
		t.Errorf("LoadFraction = %v/%v", det, nondet)
	}
}

func TestBlockMapColdMissAndSharing(t *testing.T) {
	c := New()
	// CTA 0 touches blocks 0 and 128; CTA 1 touches 128 and 256; CTA 3
	// touches 128 again.
	c.ObserveStep(0, stepFor(t, []uint32{0}), nil)
	c.ObserveStep(0, stepFor(t, []uint32{128}), nil)
	c.ObserveStep(1, stepFor(t, []uint32{128}), nil)
	c.ObserveStep(1, stepFor(t, []uint32{256}), nil)
	c.ObserveStep(3, stepFor(t, []uint32{128}), nil)

	b := c.Blocks()
	if b.DistinctBlocks != 3 || b.TotalLoadRequests != 5 {
		t.Fatalf("blocks = %d, requests = %d", b.DistinctBlocks, b.TotalLoadRequests)
	}
	if b.ColdMissRatio != 3.0/5.0 {
		t.Errorf("ColdMissRatio = %v, want 0.6", b.ColdMissRatio)
	}
	if b.SharedBlocks != 1 {
		t.Errorf("SharedBlocks = %d, want 1 (block 128)", b.SharedBlocks)
	}
	if b.SharedAccessRatio != 3.0/5.0 {
		t.Errorf("SharedAccessRatio = %v, want 0.6", b.SharedAccessRatio)
	}
	if b.MeanCTAsPerShared != 3 {
		t.Errorf("MeanCTAsPerShared = %v, want 3", b.MeanCTAsPerShared)
	}

	// CTA distances recorded: 0→1 (d=1) and 1→3 (d=2) on block 128.
	bins := c.CTADistanceHistogram()
	if len(bins) != 2 || bins[0].Distance != 1 || bins[1].Distance != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	if bins[0].Fraction != 0.5 || bins[1].Fraction != 0.5 {
		t.Errorf("fractions = %v/%v", bins[0].Fraction, bins[1].Fraction)
	}
}

func TestL1OutcomeAccounting(t *testing.T) {
	c := New()
	c.RecordL1Outcome(Det, cache.Hit)
	c.RecordL1Outcome(Det, cache.Miss)
	c.RecordL1Outcome(Det, cache.HitReserved)
	c.RecordL1Outcome(Det, cache.RsrvFailTag) // not an access, just a cycle
	if c.L1Acc[Det] != 3 || c.L1Miss[Det] != 2 {
		t.Errorf("acc/miss = %d/%d, want 3/2", c.L1Acc[Det], c.L1Miss[Det])
	}
	bd := c.L1CycleBreakdown()
	var sum float64
	for _, f := range bd {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("breakdown sums to %v", sum)
	}
	if bd[cache.RsrvFailTag] != 0.25 {
		t.Errorf("tag-fail fraction = %v, want 0.25", bd[cache.RsrvFailTag])
	}
}

func TestL2SliceCounters(t *testing.T) {
	c := New()
	c.RecordL2Outcome(Det, cache.Hit, 0)
	c.RecordL2Outcome(Det, cache.Miss, 1)
	c.RecordL2Outcome(NonDet, cache.Hit, 3) // parity → slice 1
	if c.L2SliceQueries[0] != 1 || c.L2SliceQueries[1] != 2 {
		t.Errorf("queries = %v", c.L2SliceQueries)
	}
	if c.L2SliceHits[0] != 1 || c.L2SliceHits[1] != 1 {
		t.Errorf("hits = %v", c.L2SliceHits)
	}
}

func TestTurnaroundAggregation(t *testing.T) {
	c := New()
	c.RecordLoadOp(LoadOpRecord{
		Kernel: "k", PC: 0x10, NonDet: true, NReq: 4,
		Total: 400, Unloaded: 150, RsrvPrev: 50, RsrvCurr: 30,
		GapIcntL2: 12, GapL2Icnt: 80,
	})
	c.RecordLoadOp(LoadOpRecord{
		Kernel: "k", PC: 0x10, NonDet: true, NReq: 4,
		Total: 200, Unloaded: 150, RsrvPrev: 10, RsrvCurr: 10,
	})
	tn := c.Turnaround[NonDet]
	if tn.Ops != 2 || tn.Total != 600 {
		t.Fatalf("agg = %+v", tn)
	}
	u, p, cu, m := tn.Mean()
	if u != 150 || p != 30 || cu != 20 {
		t.Errorf("means = %v/%v/%v", u, p, cu)
	}
	// MemSystem = total - others, clamped at 0 per op: (400-230)+(200-170).
	if m != (170+30)/2 {
		t.Errorf("memsys mean = %v, want 100", m)
	}
	if tn.MeanTotal() != 300 {
		t.Errorf("MeanTotal = %v", tn.MeanTotal())
	}

	p10 := c.PerPC[PCKey{Kernel: "k", PC: 0x10}]
	if p10 == nil || !p10.NonDet {
		t.Fatalf("per-PC entry missing")
	}
	g := p10.ByNReq[4]
	if g == nil || g.Ops != 2 || g.Total != 600 {
		t.Errorf("bucket = %+v", g)
	}
}

func TestMemSystemComponentClamped(t *testing.T) {
	c := New()
	// Components exceed the total (can happen for all-hit ops with rounding):
	// MemSystem must clamp to zero, not go negative.
	c.RecordLoadOp(LoadOpRecord{Total: 100, Unloaded: 90, RsrvPrev: 20, RsrvCurr: 0})
	if c.Turnaround[Det].MemSystem != 0 {
		t.Errorf("MemSystem = %d, want 0", c.Turnaround[Det].MemSystem)
	}
}

func TestUnitIdleFraction(t *testing.T) {
	c := New()
	for i := 0; i < 10; i++ {
		c.RecordSMCycle()
		c.RecordUnitCycle(isa.UnitLDST, i < 4)
	}
	if got := c.UnitIdleFraction(isa.UnitLDST); got != 0.6 {
		t.Errorf("idle = %v, want 0.6", got)
	}
}

func TestMissRatioEdgeCases(t *testing.T) {
	if MissRatio(0, 0) != 0 {
		t.Errorf("MissRatio(0,0) != 0")
	}
	if MissRatio(1, 2) != 0.5 {
		t.Errorf("MissRatio(1,2) != 0.5")
	}
}

// Property: the distance histogram fractions always sum to 1 (when any
// cross-CTA access exists) and every recorded distance is positive.
func TestQuickDistanceHistogram(t *testing.T) {
	f := func(ctas []uint8) bool {
		if len(ctas) < 2 {
			return true
		}
		c := New()
		for _, id := range ctas {
			c.ObserveStep(int(id%16), stepForQuick(), nil)
		}
		bins := c.CTADistanceHistogram()
		var total float64
		for _, b := range bins {
			if b.Distance <= 0 {
				return false
			}
			total += b.Fraction
		}
		return len(bins) == 0 || (total > 0.999 && total < 1.001)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

var quickStep *emu.Step

func stepForQuick() *emu.Step {
	if quickStep == nil {
		prog := ptx.MustParse(".kernel q\n ld.global.u32 %r0, [%r1];\n exit;")
		quickStep = &emu.Step{Inst: prog.Kernels[0].Insts[0], Mem: true, Exec: 1, Active: 1}
	}
	return quickStep
}

func TestCategoryHelpers(t *testing.T) {
	if CatOf(true) != NonDet || CatOf(false) != Det {
		t.Errorf("CatOf wrong")
	}
	if Det.String() != "D" || NonDet.String() != "N" {
		t.Errorf("String wrong")
	}
}
