// Package trace records per-request memory traces from timing runs and
// serializes them as CSV, enabling offline analysis of the kind the paper
// performs for Figures 6 and 7 (per-PC turnaround against request counts)
// without re-running the simulator.
package trace

import (
	"fmt"
	"io"
	"sort"

	"critload/internal/memreq"
)

// Record is one completed memory request's lifecycle.
type Record struct {
	ID        uint64
	Kernel    string
	PC        uint32
	Block     uint32
	Kind      memreq.Kind
	SM        int
	Partition int
	NonDet    bool
	Lanes     int

	Issued       int64
	AcceptedL1   int64
	InjectedICNT int64
	ArrivedL2    int64
	DoneL2       int64
	Returned     int64
	Serviced     memreq.Level
}

// FromRequest snapshots a finished request.
func FromRequest(r *memreq.Request) Record {
	return Record{
		ID: r.ID, Kernel: r.Kernel, PC: r.PC, Block: r.Block, Kind: r.Kind,
		SM: r.SM, Partition: r.Partition, NonDet: r.NonDet, Lanes: r.Lanes,
		Issued: r.Issued, AcceptedL1: r.AcceptedL1, InjectedICNT: r.InjectedICNT,
		ArrivedL2: r.ArrivedL2, DoneL2: r.DoneL2, Returned: r.Returned,
		Serviced: r.Serviced,
	}
}

// Latency returns the request's end-to-end latency, or 0 when it never
// completed (stores, truncated windows).
func (r Record) Latency() int64 {
	if r.Returned == 0 || r.Returned < r.Issued {
		return 0
	}
	return r.Returned - r.Issued
}

// Buffer accumulates records up to a capacity; recording beyond it drops
// the new records and counts them, so traces stay bounded on long runs.
type Buffer struct {
	cap     int
	records []Record
	dropped uint64
}

// NewBuffer builds a buffer holding at most capacity records.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = 1 << 20
	}
	return &Buffer{cap: capacity}
}

// Add records one request.
func (b *Buffer) Add(r *memreq.Request) {
	if len(b.records) >= b.cap {
		b.dropped++
		return
	}
	b.records = append(b.records, FromRequest(r))
}

// Len returns the number of buffered records.
func (b *Buffer) Len() int { return len(b.records) }

// Dropped returns how many records did not fit.
func (b *Buffer) Dropped() uint64 { return b.dropped }

// Records returns the buffered records (shared slice; do not mutate).
func (b *Buffer) Records() []Record { return b.records }

// csvHeader lists the CSV columns in order.
const csvHeader = "id,kernel,pc,block,kind,sm,partition,nondet,lanes,issued,accepted_l1,injected_icnt,arrived_l2,done_l2,returned,serviced,latency"

// WriteCSV serializes the buffered records.
func (b *Buffer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, r := range b.records {
		nd := 0
		if r.NonDet {
			nd = 1
		}
		_, err := fmt.Fprintf(w, "%d,%s,0x%x,0x%x,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%s,%d\n",
			r.ID, r.Kernel, r.PC, r.Block, r.Kind, r.SM, r.Partition, nd, r.Lanes,
			r.Issued, r.AcceptedL1, r.InjectedICNT, r.ArrivedL2, r.DoneL2,
			r.Returned, r.Serviced, r.Latency())
		if err != nil {
			return err
		}
	}
	return nil
}

// PCSummary aggregates one PC's trace records.
type PCSummary struct {
	Kernel      string
	PC          uint32
	NonDet      bool
	Requests    int
	MeanLatency float64
	MaxLatency  int64
}

// SummarizeByPC groups the buffered records per static load.
func (b *Buffer) SummarizeByPC() []PCSummary {
	type key struct {
		kernel string
		pc     uint32
	}
	agg := map[key]*PCSummary{}
	for _, r := range b.records {
		k := key{r.Kernel, r.PC}
		s := agg[k]
		if s == nil {
			s = &PCSummary{Kernel: r.Kernel, PC: r.PC, NonDet: r.NonDet}
			agg[k] = s
		}
		s.Requests++
		lat := r.Latency()
		s.MeanLatency += float64(lat)
		if lat > s.MaxLatency {
			s.MaxLatency = lat
		}
	}
	out := make([]PCSummary, 0, len(agg))
	for _, s := range agg {
		if s.Requests > 0 {
			s.MeanLatency /= float64(s.Requests)
		}
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kernel != out[j].Kernel {
			return out[i].Kernel < out[j].Kernel
		}
		return out[i].PC < out[j].PC
	})
	return out
}
