package trace

import (
	"strings"
	"testing"

	"critload/internal/memreq"
)

func req(id uint64, pc uint32, nondet bool, issued, returned int64) *memreq.Request {
	return &memreq.Request{
		ID: id, Kernel: "k", PC: pc, Block: 0x1000, Kind: memreq.Load,
		NonDet: nondet, Lanes: 4, Issued: issued, Returned: returned,
		Serviced: memreq.LvlL2,
	}
}

func TestBufferRecordsAndLatency(t *testing.T) {
	b := NewBuffer(8)
	b.Add(req(1, 0x10, false, 100, 350))
	b.Add(req(2, 0x20, true, 100, 700))
	if b.Len() != 2 || b.Dropped() != 0 {
		t.Fatalf("len=%d dropped=%d", b.Len(), b.Dropped())
	}
	recs := b.Records()
	if recs[0].Latency() != 250 || recs[1].Latency() != 600 {
		t.Errorf("latencies = %d/%d", recs[0].Latency(), recs[1].Latency())
	}
	// An unreturned request reports zero latency.
	if (Record{Issued: 10}).Latency() != 0 {
		t.Errorf("unreturned latency nonzero")
	}
}

func TestBufferCapacityDrops(t *testing.T) {
	b := NewBuffer(2)
	for i := uint64(0); i < 5; i++ {
		b.Add(req(i, 0x10, false, 0, 10))
	}
	if b.Len() != 2 || b.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2/3", b.Len(), b.Dropped())
	}
}

func TestWriteCSV(t *testing.T) {
	b := NewBuffer(8)
	b.Add(req(1, 0x110, true, 5, 105))
	var sb strings.Builder
	if err := b.WriteCSV(&sb); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "id,kernel,pc,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "0x110") || !strings.Contains(lines[1], ",L2,100") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestSummarizeByPC(t *testing.T) {
	b := NewBuffer(16)
	b.Add(req(1, 0x10, false, 0, 100))
	b.Add(req(2, 0x10, false, 0, 300))
	b.Add(req(3, 0x20, true, 0, 50))
	sum := b.SummarizeByPC()
	if len(sum) != 2 {
		t.Fatalf("summaries = %d", len(sum))
	}
	if sum[0].PC != 0x10 || sum[0].Requests != 2 || sum[0].MeanLatency != 200 || sum[0].MaxLatency != 300 {
		t.Errorf("pc 0x10 summary = %+v", sum[0])
	}
	if sum[1].PC != 0x20 || !sum[1].NonDet {
		t.Errorf("pc 0x20 summary = %+v", sum[1])
	}
}
