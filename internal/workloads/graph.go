package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"critload/internal/mem"
	"critload/internal/ptx"
)

// flagSet reads a device word used as a host-visible flag.
func flagSet(m *mem.Memory, addr uint32) bool { return m.Read32(addr) != 0 }

// ---------------------------------------------------------------------------
// bfs — breadth-first search (Rodinia bfs, the paper's Code 1): frontier
// mask loads are deterministic; the edge-indexed visited/cost accesses are
// non-deterministic.
// ---------------------------------------------------------------------------

const bfsSrc = `
.kernel bfs_k1
.param .u32 nodes
.param .u32 edges
.param .u32 mask
.param .u32 updating
.param .u32 visited
.param .u32 cost
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // tid
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [mask];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // g_graph_mask[tid] (deterministic)
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    st.global.u32 [%r6], 0;
    ld.param.u32 %r8, [nodes];
    shl.u32      %r9, %r2, 3;             // 2 words per node
    add.u32      %r10, %r8, %r9;
    ld.global.u32 %r28, [%r10];           // i = nodes[tid].starting (det)
    ld.param.u32 %r14, [cost];
    add.u32      %r15, %r14, %r5;
    ld.param.u32 %r17, [edges];
    ld.param.u32 %r18, [visited];
    ld.param.u32 %r19, [updating];
LOOP:
    // The loop bound is re-loaded every iteration, exactly as nvcc emits
    // for Code 1's "i < nodes[tid].starting + nodes[tid].no_of_edges".
    ld.global.u32 %r11, [%r10];           // starting (deterministic)
    ld.global.u32 %r12, [%r10+4];         // no_of_edges (deterministic)
    add.u32      %r13, %r11, %r12;        // end
    setp.ge.u32  %p2, %r28, %r13;
@%p2 bra EXIT;
    shl.u32      %r20, %r28, 2;
    add.u32      %r21, %r17, %r20;
    ld.global.u32 %r22, [%r21];           // id = g_graph_edges[i] (non-det)
    shl.u32      %r23, %r22, 2;
    add.u32      %r24, %r18, %r23;
    ld.global.u32 %r25, [%r24];           // g_graph_visited[id] (non-det)
    setp.ne.u32  %p3, %r25, 0;
@%p3 bra SKIP;
    ld.global.u32 %r16, [%r15];           // cost[tid] (det, reloaded)
    add.u32      %r16, %r16, 1;
    add.u32      %r26, %r14, %r23;
    st.global.u32 [%r26], %r16;           // cost[id] = cost[tid] + 1
    add.u32      %r27, %r19, %r23;
    st.global.u32 [%r27], 1;              // updating[id] = 1
SKIP:
    add.u32      %r28, %r28, 1;
    bra LOOP;
EXIT:
    exit;

.kernel bfs_k2
.param .u32 mask
.param .u32 updating
.param .u32 visited
.param .u32 over
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [updating];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    ld.param.u32 %r8, [mask];
    add.u32      %r9, %r8, %r5;
    st.global.u32 [%r9], 1;
    ld.param.u32 %r10, [visited];
    add.u32      %r11, %r10, %r5;
    st.global.u32 [%r11], 1;
    ld.param.u32 %r12, [over];
    st.global.u32 [%r12], 1;
    st.global.u32 [%r6], 0;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "bfs",
		Category:    Graph,
		Description: "breadth-first search with frontier masks (Rodinia bfs)",
		DataSet:     "65536-vertex skewed random graph, avg degree 8",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 65536
			}
			rng := rand.New(rand.NewSource(p.Seed + 11))
			m := mem.New()
			prog := ptx.MustParse(bfsSrc)
			k1 := prog.MustKernel("bfs_k1")
			k2 := prog.MustKernel("bfs_k2")

			g := randomGraph(rng, n, 8)
			nodes := make([]uint32, 2*n)
			for v := 0; v < n; v++ {
				nodes[2*v] = g.rowPtr[v]
				nodes[2*v+1] = g.rowPtr[v+1] - g.rowPtr[v]
			}
			const inf = math.MaxUint32
			cost := make([]uint32, n)
			for i := range cost {
				cost[i] = inf
			}
			src := 0
			cost[src] = 0
			maskArr := make([]uint32, n)
			maskArr[src] = 1
			visited := make([]uint32, n)
			visited[src] = 1

			nodesB := m.AllocU32s(nodes)
			edgesB := m.AllocU32s(g.cols)
			maskB := m.AllocU32s(maskArr)
			updB := m.Alloc(uint32(4 * n))
			visB := m.AllocU32s(visited)
			costB := m.AllocU32s(cost)
			overB := m.Alloc(4)

			const block = 512
			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "bfs_k1",
				CTAs:          grid1D(n, block),
				ThreadsPerCTA: block,
			}
			inst.Run = func(exec Executor) error {
				for iter := 0; ; iter++ {
					if iter > n {
						return fmt.Errorf("bfs: no convergence after %d iterations", iter)
					}
					m.Write32(overB, 0)
					if err := exec(launch1D(k1, n, block, nodesB, edgesB, maskB, updB, visB, costB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(k2, n, block, maskB, updB, visB, overB, uint32(n))); err != nil {
						return err
					}
					if !flagSet(m, overB) {
						return nil
					}
				}
			}
			inst.Verify = func() error {
				want := g.bfsDistances(src)
				return checkU32(m, costB, want, "bfs cost")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// sssp — single-source shortest path (Bellman-Ford with atomic relaxation,
// LonestarGPU-style): edge and weight loads plus the atomic distance
// relaxation are all non-deterministic.
// ---------------------------------------------------------------------------

const ssspSrc = `
.kernel sssp_k1
.param .u32 rowptr
.param .u32 cols
.param .u32 wts
.param .u32 dist
.param .u32 mask
.param .u32 updating
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [mask];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // mask[tid] (deterministic)
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    st.global.u32 [%r6], 0;
    ld.param.u32 %r8, [rowptr];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];            // start (deterministic)
    ld.param.u32 %r12, [dist];
    add.u32      %r13, %r12, %r5;
    ld.param.u32 %r15, [cols];
    ld.param.u32 %r16, [wts];
    ld.param.u32 %r17, [updating];
LOOP:
    ld.global.u32 %r11, [%r9+4];          // end (det, reloaded per iteration)
    setp.ge.u32  %p2, %r10, %r11;
@%p2 bra EXIT;
    shl.u32      %r18, %r10, 2;
    add.u32      %r19, %r15, %r18;
    ld.global.u32 %r20, [%r19];           // id = cols[j] (non-det)
    add.u32      %r21, %r16, %r18;
    ld.global.u32 %r22, [%r21];           // w = wts[j] (non-det)
    ld.global.u32 %r14, [%r13];           // d = dist[tid] (det, reloaded)
    add.u32      %r23, %r14, %r22;        // nd = d + w
    shl.u32      %r24, %r20, 2;
    add.u32      %r25, %r12, %r24;
    atom.global.min.u32 %r26, [%r25], %r23; // old = atomicMin(dist[id], nd)
    setp.le.u32  %p3, %r26, %r23;
@%p3 bra SKIP;
    add.u32      %r27, %r17, %r24;
    st.global.u32 [%r27], 1;              // updating[id] = 1
SKIP:
    add.u32      %r10, %r10, 1;
    bra LOOP;
EXIT:
    exit;

.kernel sssp_k2
.param .u32 mask
.param .u32 updating
.param .u32 over
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [updating];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    st.global.u32 [%r6], 0;
    ld.param.u32 %r8, [mask];
    add.u32      %r9, %r8, %r5;
    st.global.u32 [%r9], 1;
    ld.param.u32 %r10, [over];
    st.global.u32 [%r10], 1;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "sssp",
		Category:    Graph,
		Description: "single-source shortest path, Bellman-Ford with atomic relaxation",
		DataSet:     "32768-vertex weighted random graph, avg degree 8",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 32768
			}
			rng := rand.New(rand.NewSource(p.Seed + 12))
			m := mem.New()
			prog := ptx.MustParse(ssspSrc)
			k1 := prog.MustKernel("sssp_k1")
			k2 := prog.MustKernel("sssp_k2")

			g := randomGraph(rng, n, 8)
			const inf = uint32(0x3FFFFFFF)
			dist := make([]uint32, n)
			for i := range dist {
				dist[i] = inf
			}
			src := 0
			dist[src] = 0
			maskArr := make([]uint32, n)
			maskArr[src] = 1

			rowB := m.AllocU32s(g.rowPtr)
			colsB := m.AllocU32s(g.cols)
			wtsB := m.AllocU32s(g.wts)
			distB := m.AllocU32s(dist)
			maskB := m.AllocU32s(maskArr)
			updB := m.Alloc(uint32(4 * n))
			overB := m.Alloc(4)

			const block = 512
			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "sssp_k1",
				CTAs:          grid1D(n, block),
				ThreadsPerCTA: block,
			}
			inst.Run = func(exec Executor) error {
				for iter := 0; ; iter++ {
					if iter > n {
						return fmt.Errorf("sssp: no convergence after %d iterations", iter)
					}
					m.Write32(overB, 0)
					if err := exec(launch1D(k1, n, block, rowB, colsB, wtsB, distB, maskB, updB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(k2, n, block, maskB, updB, overB, uint32(n))); err != nil {
						return err
					}
					if !flagSet(m, overB) {
						return nil
					}
				}
			}
			inst.Verify = func() error {
				cpu := g.shortestPaths(src)
				want := make([]uint32, n)
				for i, d := range cpu {
					if d == math.MaxUint32 {
						want[i] = inf
					} else {
						want[i] = d
					}
				}
				return checkU32(m, distB, want, "sssp dist")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// ccl — connected component labeling by min-label propagation with pointer
// jumping: label[label[v]] is the classic non-deterministic access.
// ---------------------------------------------------------------------------

const cclSrc = `
.kernel ccl_prop
.param .u32 rowptr
.param .u32 cols
.param .u32 label
.param .u32 changed
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [label];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // l = label[v] (deterministic)
    mov.u32      %r8, %r7;                // m = l
    // Pointer jump: label[label[v]] (non-deterministic).
    shl.u32      %r9, %r7, 2;
    add.u32      %r10, %r4, %r9;
    ld.global.u32 %r11, [%r10];
    min.u32      %r8, %r8, %r11;
    // Neighbour scan.
    ld.param.u32 %r12, [rowptr];
    add.u32      %r13, %r12, %r5;
    ld.global.u32 %r14, [%r13];           // start (deterministic)
    ld.param.u32 %r16, [cols];
LOOP:
    ld.global.u32 %r15, [%r13+4];         // end (det, reloaded per iteration)
    setp.ge.u32  %p1, %r14, %r15;
@%p1 bra DECIDE;
    shl.u32      %r17, %r14, 2;
    add.u32      %r18, %r16, %r17;
    ld.global.u32 %r19, [%r18];           // u = cols[j] (non-det)
    shl.u32      %r20, %r19, 2;
    add.u32      %r21, %r4, %r20;
    ld.global.u32 %r22, [%r21];           // label[u] (non-det)
    min.u32      %r8, %r8, %r22;
    add.u32      %r14, %r14, 1;
    bra LOOP;
DECIDE:
    setp.ge.u32  %p2, %r8, %r7;
@%p2 bra EXIT;
    st.global.u32 [%r6], %r8;             // label[v] = m
    ld.param.u32 %r23, [changed];
    st.global.u32 [%r23], 1;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "ccl",
		Category:    Graph,
		Description: "connected component labeling by min-label propagation with pointer jumping",
		DataSet:     "32768-vertex random graph, avg degree 6",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 32768
			}
			rng := rand.New(rand.NewSource(p.Seed + 13))
			m := mem.New()
			prog := ptx.MustParse(cclSrc)
			k := prog.MustKernel("ccl_prop")

			// A sparse graph with isolated pockets: several components.
			g := randomGraph(rng, n, 2)
			label := make([]uint32, n)
			for i := range label {
				label[i] = uint32(i)
			}
			rowB := m.AllocU32s(g.rowPtr)
			colsB := m.AllocU32s(g.cols)
			labelB := m.AllocU32s(label)
			chB := m.Alloc(4)

			const block = 256
			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "ccl_prop",
				CTAs:          grid1D(n, block),
				ThreadsPerCTA: block,
			}
			inst.Run = func(exec Executor) error {
				for iter := 0; ; iter++ {
					if iter > n {
						return fmt.Errorf("ccl: no convergence after %d iterations", iter)
					}
					m.Write32(chB, 0)
					if err := exec(launch1D(k, n, block, rowB, colsB, labelB, chB, uint32(n))); err != nil {
						return err
					}
					if !flagSet(m, chB) {
						return nil
					}
				}
			}
			inst.Verify = func() error {
				want := g.components()
				return checkU32(m, labelB, want, "ccl label")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// mis — maximal independent set (Luby's algorithm with static priorities):
// priority and state loads through edge lists are non-deterministic.
// ---------------------------------------------------------------------------

const misSrc = `
.kernel mis_select
.param .u32 rowptr
.param .u32 cols
.param .u32 prio
.param .u32 state
.param .u32 cand
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [state];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // state[v] (deterministic)
    setp.ne.u32  %p1, %r7, 0;
@%p1 bra EXIT;                            // already decided
    ld.param.u32 %r8, [prio];
    add.u32      %r9, %r8, %r5;
    ld.param.u32 %r11, [rowptr];
    add.u32      %r12, %r11, %r5;
    ld.global.u32 %r13, [%r12];           // start (deterministic)
    ld.param.u32 %r15, [cols];
    mov.u32      %r16, 1;                 // isMax
LOOP:
    ld.global.u32 %r14, [%r12+4];         // end (det, reloaded per iteration)
    setp.ge.u32  %p2, %r13, %r14;
@%p2 bra DECIDE;
    shl.u32      %r17, %r13, 2;
    add.u32      %r18, %r15, %r17;
    ld.global.u32 %r19, [%r18];           // u (non-det)
    shl.u32      %r20, %r19, 2;
    add.u32      %r21, %r4, %r20;
    ld.global.u32 %r22, [%r21];           // state[u] (non-det)
    setp.eq.u32  %p3, %r22, 2;
@%p3 bra NEXT;                            // OUT neighbours don't block
    setp.eq.u32  %p6, %r22, 1;
@%p6 mov.u32  %r16, 0;                    // an IN neighbour always blocks
@%p6 bra NEXT;
    ld.global.u32 %r10, [%r9];            // prio[v] (det, reloaded)
    add.u32      %r23, %r8, %r20;
    ld.global.u32 %r24, [%r23];           // prio[u] (non-det)
    setp.le.u32  %p4, %r24, %r10;
@%p4 bra NEXT;
    mov.u32      %r16, 0;                 // a higher-priority live neighbour
NEXT:
    add.u32      %r13, %r13, 1;
    bra LOOP;
DECIDE:
    setp.eq.u32  %p5, %r16, 0;
@%p5 bra EXIT;
    // Record the winner in a separate candidate array so every selection
    // decision this round sees the same state snapshot.
    ld.param.u32 %r25, [cand];
    add.u32      %r26, %r25, %r5;
    st.global.u32 [%r26], 1;
EXIT:
    exit;

.kernel mis_commit
.param .u32 cand
.param .u32 state
.param .u32 changed
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [cand];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];
    setp.eq.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    st.global.u32 [%r6], 0;
    ld.param.u32 %r8, [state];
    add.u32      %r9, %r8, %r5;
    st.global.u32 [%r9], 1;               // state[v] = IN
    ld.param.u32 %r10, [changed];
    st.global.u32 [%r10], 1;
EXIT:
    exit;

.kernel mis_exclude
.param .u32 rowptr
.param .u32 cols
.param .u32 state
.param .u32 changed
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [state];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];
    setp.ne.u32  %p1, %r7, 0;
@%p1 bra EXIT;
    ld.param.u32 %r8, [rowptr];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];            // start (deterministic)
    ld.param.u32 %r12, [cols];
LOOP:
    ld.global.u32 %r11, [%r9+4];          // end (det, reloaded per iteration)
    setp.ge.u32  %p2, %r10, %r11;
@%p2 bra EXIT;
    shl.u32      %r13, %r10, 2;
    add.u32      %r14, %r12, %r13;
    ld.global.u32 %r15, [%r14];           // u (non-det)
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r4, %r16;
    ld.global.u32 %r18, [%r17];           // state[u] (non-det)
    setp.ne.u32  %p3, %r18, 1;
@%p3 bra NEXT;
    st.global.u32 [%r6], 2;               // neighbour is IN: v is OUT
    ld.param.u32 %r19, [changed];
    st.global.u32 [%r19], 1;
    bra EXIT;
NEXT:
    add.u32      %r10, %r10, 1;
    bra LOOP;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "mis",
		Category:    Graph,
		Description: "maximal independent set, Luby-style priority selection",
		DataSet:     "32768-vertex random graph, avg degree 8",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 32768
			}
			rng := rand.New(rand.NewSource(p.Seed + 14))
			m := mem.New()
			prog := ptx.MustParse(misSrc)
			sel := prog.MustKernel("mis_select")
			commit := prog.MustKernel("mis_commit")
			excl := prog.MustKernel("mis_exclude")

			g := randomGraph(rng, n, 8)
			// Unique priorities: a random permutation.
			prio := make([]uint32, n)
			for i, p := range rng.Perm(n) {
				prio[i] = uint32(p)
			}
			rowB := m.AllocU32s(g.rowPtr)
			colsB := m.AllocU32s(g.cols)
			prioB := m.AllocU32s(prio)
			stateB := m.Alloc(uint32(4 * n))
			candB := m.Alloc(uint32(4 * n))
			chB := m.Alloc(4)

			const block = 512
			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "mis_select",
				CTAs:          grid1D(n, block),
				ThreadsPerCTA: block,
			}
			inst.Run = func(exec Executor) error {
				for iter := 0; ; iter++ {
					if iter > n {
						return fmt.Errorf("mis: no convergence after %d iterations", iter)
					}
					m.Write32(chB, 0)
					if err := exec(launch1D(sel, n, block, rowB, colsB, prioB, stateB, candB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(commit, n, block, candB, stateB, chB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(excl, n, block, rowB, colsB, stateB, chB, uint32(n))); err != nil {
						return err
					}
					if !flagSet(m, chB) {
						return nil
					}
				}
			}
			inst.Verify = func() error {
				state := m.ReadU32s(stateB, n)
				for v := 0; v < n; v++ {
					switch state[v] {
					case 1:
						for e := g.rowPtr[v]; e < g.rowPtr[v+1]; e++ {
							if state[g.cols[e]] == 1 {
								return fmt.Errorf("mis: adjacent IN vertices %d and %d", v, g.cols[e])
							}
						}
					case 2:
						ok := false
						for e := g.rowPtr[v]; e < g.rowPtr[v+1]; e++ {
							if state[g.cols[e]] == 1 {
								ok = true
								break
							}
						}
						if !ok {
							return fmt.Errorf("mis: OUT vertex %d has no IN neighbour", v)
						}
					default:
						return fmt.Errorf("mis: vertex %d undecided (state %d)", v, state[v])
					}
				}
				return nil
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// mst — Borůvka minimum spanning forest: per-component minimum edge
// selection with atomics, hooking, 2-cycle breaking, and pointer jumping.
// ---------------------------------------------------------------------------

const mstSrc = `
.kernel mst_reset
.param .u32 minw
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [minw];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    st.global.u32 [%r6], 0xffffffff;
EXIT:
    exit;

.kernel mst_find
.param .u32 rowptr
.param .u32 cols
.param .u32 wts
.param .u32 comp
.param .u32 bestw
.param .u32 bestc
.param .u32 minw
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // v
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [comp];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // cv = comp[v] (deterministic)
    ld.param.u32 %r8, [rowptr];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];            // start (deterministic)
    ld.param.u32 %r12, [cols];
    ld.param.u32 %r13, [wts];
    mov.u32      %r14, 0xffffffff;        // best weight
    mov.u32      %r15, 0xffffffff;        // best target component
LOOP:
    ld.global.u32 %r11, [%r9+4];          // end (det, reloaded per iteration)
    setp.ge.u32  %p1, %r10, %r11;
@%p1 bra STORE;
    shl.u32      %r16, %r10, 2;
    add.u32      %r17, %r12, %r16;
    ld.global.u32 %r18, [%r17];           // u (non-det)
    shl.u32      %r19, %r18, 2;
    add.u32      %r20, %r4, %r19;
    ld.global.u32 %r21, [%r20];           // cu = comp[u] (non-det)
    setp.eq.u32  %p2, %r21, %r7;
@%p2 bra NEXT;                            // same component
    add.u32      %r22, %r13, %r16;
    ld.global.u32 %r23, [%r22];           // w = wts[j] (non-det)
    setp.ge.u32  %p3, %r23, %r14;
@%p3 bra NEXT;
    mov.u32      %r14, %r23;
    mov.u32      %r15, %r21;
NEXT:
    add.u32      %r10, %r10, 1;
    bra LOOP;
STORE:
    ld.param.u32 %r24, [bestw];
    add.u32      %r25, %r24, %r5;
    st.global.u32 [%r25], %r14;
    ld.param.u32 %r26, [bestc];
    add.u32      %r27, %r26, %r5;
    st.global.u32 [%r27], %r15;
    setp.eq.u32  %p4, %r14, 0xffffffff;
@%p4 bra EXIT;
    ld.param.u32 %r28, [minw];
    shl.u32      %r29, %r7, 2;
    add.u32      %r30, %r28, %r29;
    atom.global.min.u32 %r31, [%r30], %r14; // per-component minimum (non-det)
EXIT:
    exit;

.kernel mst_hook
.param .u32 comp
.param .u32 bestw
.param .u32 bestc
.param .u32 minw
.param .u32 selected
.param .u32 changed
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // v
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [bestw];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // bestw[v] (deterministic)
    setp.eq.u32  %p1, %r7, 0xffffffff;
@%p1 bra EXIT;
    ld.param.u32 %r8, [comp];
    add.u32      %r9, %r8, %r5;
    ld.global.u32 %r10, [%r9];            // cv
    ld.param.u32 %r11, [minw];
    shl.u32      %r12, %r10, 2;
    add.u32      %r13, %r11, %r12;
    ld.global.u32 %r14, [%r13];           // minw[cv] (non-det)
    setp.ne.u32  %p2, %r7, %r14;
@%p2 bra EXIT;                            // not the winning edge
    ld.param.u32 %r15, [bestc];
    add.u32      %r16, %r15, %r5;
    ld.global.u32 %r17, [%r16];           // target component
    add.u32      %r18, %r8, %r12;
    st.global.u32 [%r18], %r17;           // comp[cv] = bestc[v] (hook)
    ld.param.u32 %r19, [selected];
    shl.u32      %r20, %r7, 2;
    add.u32      %r21, %r19, %r20;
    st.global.u32 [%r21], 1;              // mark MST edge by unique weight
    ld.param.u32 %r22, [changed];
    st.global.u32 [%r22], 1;
EXIT:
    exit;

.kernel mst_break
.param .u32 comp
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // candidate root c
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [comp];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // p = comp[c] (deterministic)
    shl.u32      %r8, %r7, 2;
    add.u32      %r9, %r4, %r8;
    ld.global.u32 %r10, [%r9];            // comp[p] (non-det)
    setp.ne.u32  %p1, %r10, %r2;
@%p1 bra EXIT;                            // not a 2-cycle
    setp.ge.u32  %p2, %r2, %r7;
@%p2 bra EXIT;                            // only the smaller id becomes root
    st.global.u32 [%r6], %r2;             // comp[c] = c
EXIT:
    exit;

.kernel mst_jump
.param .u32 comp
.param .u32 changed
.param .u32 n
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // v
    ld.param.u32 %r3, [n];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [comp];
    shl.u32      %r5, %r2, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // c = comp[v] (deterministic)
    shl.u32      %r8, %r7, 2;
    add.u32      %r9, %r4, %r8;
    ld.global.u32 %r10, [%r9];            // cc = comp[c] (non-det)
    setp.eq.u32  %p1, %r10, %r7;
@%p1 bra EXIT;
    st.global.u32 [%r6], %r10;
    ld.param.u32 %r11, [changed];
    st.global.u32 [%r11], 1;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "mst",
		Category:    Graph,
		Description: "Borůvka minimum spanning forest with atomic component minima",
		DataSet:     "16384-vertex weighted random graph, avg degree 6, unique weights",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 16384
			}
			rng := rand.New(rand.NewSource(p.Seed + 15))
			m := mem.New()
			prog := ptx.MustParse(mstSrc)
			kReset := prog.MustKernel("mst_reset")
			kFind := prog.MustKernel("mst_find")
			kHook := prog.MustKernel("mst_hook")
			kBreak := prog.MustKernel("mst_break")
			kJump := prog.MustKernel("mst_jump")

			g := randomGraph(rng, n, 6)
			comp := make([]uint32, n)
			for i := range comp {
				comp[i] = uint32(i)
			}
			maxW := uint32(0)
			for _, w := range g.wts {
				if w > maxW {
					maxW = w
				}
			}
			rowB := m.AllocU32s(g.rowPtr)
			colsB := m.AllocU32s(g.cols)
			wtsB := m.AllocU32s(g.wts)
			compB := m.AllocU32s(comp)
			bestwB := m.Alloc(uint32(4 * n))
			bestcB := m.Alloc(uint32(4 * n))
			minwB := m.Alloc(uint32(4 * n))
			selB := m.Alloc(uint32(4 * (maxW + 1)))
			chB := m.Alloc(4)

			const block = 384
			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "mst_find",
				CTAs:          grid1D(n, block),
				ThreadsPerCTA: block,
			}
			inst.Run = func(exec Executor) error {
				for round := 0; ; round++ {
					if round > 64 {
						return fmt.Errorf("mst: no convergence after %d rounds", round)
					}
					m.Write32(chB, 0)
					if err := exec(launch1D(kReset, n, block, minwB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(kFind, n, block, rowB, colsB, wtsB, compB, bestwB, bestcB, minwB, uint32(n))); err != nil {
						return err
					}
					if err := exec(launch1D(kHook, n, block, compB, bestwB, bestcB, minwB, selB, chB, uint32(n))); err != nil {
						return err
					}
					if !flagSet(m, chB) {
						return nil
					}
					if err := exec(launch1D(kBreak, n, block, compB, uint32(n))); err != nil {
						return err
					}
					// Pointer-jump until the component forest is flat,
					// reusing the flag word for jump convergence.
					for {
						m.Write32(chB, 0)
						if err := exec(launch1D(kJump, n, block, compB, chB, uint32(n))); err != nil {
							return err
						}
						if !flagSet(m, chB) {
							break
						}
					}
				}
			}
			inst.Verify = func() error {
				// The selected edges must sum to the Kruskal forest weight
				// (unique weights make the MST unique).
				var total uint64
				for w := uint32(1); w <= maxW; w++ {
					if m.Read32(selB+4*w) != 0 {
						total += uint64(w)
					}
				}
				want := g.mstWeight()
				if total != want {
					return fmt.Errorf("mst: selected weight %d, want %d", total, want)
				}
				// And the component structure must match CPU connectivity.
				cpu := g.components()
				gpu := m.ReadU32s(compB, n)
				groups := map[uint32]uint32{}
				for v := 0; v < n; v++ {
					root := gpu[v]
					if seen, ok := groups[root]; ok {
						if seen != cpu[v] {
							return fmt.Errorf("mst: component mix-up at vertex %d", v)
						}
					} else {
						groups[root] = cpu[v]
					}
				}
				return nil
			}
			return inst, nil
		},
	})
}
