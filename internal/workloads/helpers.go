package workloads

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"critload/internal/emu"
	"critload/internal/mem"
	"critload/internal/ptx"
)

// f32bits converts a float32 to its register representation.
func f32bits(f float32) uint32 { return math.Float32bits(f) }

// grid1D returns the CTA count covering n threads with the given block size.
func grid1D(n, block int) int { return (n + block - 1) / block }

// checkF32 compares a device float array against a reference within an
// absolute-or-relative tolerance.
func checkF32(m *mem.Memory, base uint32, want []float32, tol float64, what string) error {
	for i, w := range want {
		got := m.ReadF32(base + uint32(4*i))
		diff := math.Abs(float64(got) - float64(w))
		if diff > tol && diff > tol*math.Abs(float64(w)) {
			return fmt.Errorf("%s[%d] = %v, want %v (diff %v)", what, i, got, w, diff)
		}
	}
	return nil
}

// checkU32 compares a device word array against a reference exactly.
func checkU32(m *mem.Memory, base uint32, want []uint32, what string) error {
	for i, w := range want {
		if got := m.Read32(base + uint32(4*i)); got != w {
			return fmt.Errorf("%s[%d] = %d, want %d", what, i, got, w)
		}
	}
	return nil
}

// randF32s returns n floats in [lo, hi).
func randF32s(rng *rand.Rand, n int, lo, hi float32) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = lo + rng.Float32()*(hi-lo)
	}
	return out
}

// launch1D builds a 1-D launch.
func launch1D(k *ptx.Kernel, threads, block int, params ...uint32) *emu.Launch {
	return &emu.Launch{
		Kernel: k,
		Grid:   emu.Dim1(grid1D(threads, block)),
		Block:  emu.Dim1(block),
		Params: params,
	}
}

// launch2D builds a 2-D launch with blockX×blockY threads per CTA covering
// an nx×ny domain.
func launch2D(k *ptx.Kernel, nx, ny, blockX, blockY int, params ...uint32) *emu.Launch {
	return &emu.Launch{
		Kernel: k,
		Grid:   emu.Dim2(grid1D(nx, blockX), grid1D(ny, blockY)),
		Block:  emu.Dim2(blockX, blockY),
		Params: params,
	}
}

// csr is a CPU-side compressed sparse row graph/matrix.
type csr struct {
	n      int
	rowPtr []uint32 // n+1
	cols   []uint32
	wts    []uint32 // optional edge weights
}

// nnz returns the stored entry count.
func (g *csr) nnz() int { return len(g.cols) }

// randomGraph builds an undirected random graph with n vertices and roughly
// degree*n/2 undirected edges, stored as a symmetric CSR. A power-law-ish
// skew concentrates edges on low-numbered vertices, like the paper's R-MAT
// inputs.
func randomGraph(rng *rand.Rand, n, degree int) *csr {
	adj := make([]map[uint32]uint32, n)
	for i := range adj {
		adj[i] = map[uint32]uint32{}
	}
	nextW := uint32(1)
	edges := n * degree / 2
	for e := 0; e < edges; e++ {
		// Mildly skewed endpoint selection (exponent 1.5): a heavy-ish tail
		// like the paper's R-MAT inputs without creating mega-hubs that
		// would let the edge loops dominate the dynamic instruction mix.
		u := int(float64(n) * math.Pow(rng.Float64(), 1.5))
		v := rng.Intn(n)
		if u >= n {
			u = n - 1
		}
		if u == v {
			continue
		}
		if _, dup := adj[u][uint32(v)]; dup {
			continue
		}
		w := nextW // unique weights keep MST selection deterministic
		nextW++
		adj[u][uint32(v)] = w
		adj[v][uint32(u)] = w
	}
	g := &csr{n: n, rowPtr: make([]uint32, n+1)}
	for u := 0; u < n; u++ {
		g.rowPtr[u] = uint32(len(g.cols))
		// Deterministic neighbor order.
		nbrs := make([]uint32, 0, len(adj[u]))
		for v := range adj[u] {
			nbrs = append(nbrs, v)
		}
		sortU32(nbrs)
		for _, v := range nbrs {
			g.cols = append(g.cols, v)
			g.wts = append(g.wts, adj[u][v])
		}
	}
	g.rowPtr[n] = uint32(len(g.cols))
	return g
}

func sortU32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// components labels connected components on the CPU (min vertex id per
// component) for ccl/mst verification.
func (g *csr) components() []uint32 {
	label := make([]uint32, g.n)
	for i := range label {
		label[i] = uint32(i)
	}
	// BFS from each unvisited vertex, assigning the component's minimum id.
	seen := make([]bool, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		queue := []uint32{uint32(s)}
		seen[s] = true
		compMin := uint32(s)
		var members []uint32
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			members = append(members, u)
			if u < compMin {
				compMin = u
			}
			for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
				v := g.cols[e]
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		for _, u := range members {
			label[u] = compMin
		}
	}
	return label
}

// bfsDistances computes hop counts from src on the CPU (math.MaxUint32 =
// unreachable).
func (g *csr) bfsDistances(src int) []uint32 {
	const inf = math.MaxUint32
	dist := make([]uint32, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	queue := []uint32{uint32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			v := g.cols[e]
			if dist[v] == inf {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// shortestPaths computes weighted single-source distances (Dijkstra) on the
// CPU for sssp verification.
func (g *csr) shortestPaths(src int) []uint32 {
	const inf = math.MaxUint32
	dist := make([]uint32, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for {
		u, best := -1, uint32(inf)
		for v := 0; v < g.n; v++ {
			if !done[v] && dist[v] < best {
				u, best = v, dist[v]
			}
		}
		if u < 0 {
			return dist
		}
		done[u] = true
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			v := g.cols[e]
			if nd := dist[u] + g.wts[e]; nd < dist[v] {
				dist[v] = nd
			}
		}
	}
}

// mstWeight computes the minimum-spanning-forest weight (Kruskal) on the CPU.
func (g *csr) mstWeight() uint64 {
	type edge struct {
		u, v uint32
		w    uint32
	}
	var edges []edge
	for u := 0; u < g.n; u++ {
		for e := g.rowPtr[u]; e < g.rowPtr[u+1]; e++ {
			v := g.cols[e]
			if uint32(u) < v {
				edges = append(edges, edge{uint32(u), v, g.wts[e]})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	parent := make([]uint32, g.n)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var total uint64
	for _, e := range edges {
		ru, rv := find(e.u), find(e.v)
		if ru != rv {
			parent[ru] = rv
			total += uint64(e.w)
		}
	}
	return total
}
