package workloads

import (
	"math"
	"math/rand"

	"critload/internal/mem"
	"critload/internal/ptx"
)

// ---------------------------------------------------------------------------
// dwt — 2-D discrete wavelet transform (Haar), row pass + column pass with
// shared-memory staging, as image kernels do.
// ---------------------------------------------------------------------------

const dwtSrc = `
.kernel dwt_rows
.param .u32 in
.param .u32 out
.param .u32 W
.param .u32 H
.shared 2048
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // pair index
    ld.param.u32 %r3, [W];
    ld.param.u32 %r4, [H];
    shr.u32      %r5, %r3, 1;             // W/2
    mul.u32      %r6, %r5, %r4;           // total pairs
    setp.ge.u32  %p0, %r2, %r6;
@%p0 bra EXIT;
    div.u32      %r7, %r2, %r5;           // row
    rem.u32      %r8, %r2, %r5;           // pair column
    ld.param.u32 %r9, [in];
    mul.u32      %r10, %r7, %r3;          // row*W
    shl.u32      %r11, %r8, 1;            // 2c
    add.u32      %r12, %r10, %r11;
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r9, %r13;
    ld.global.f32 %r15, [%r14];           // a = in[row*W + 2c]
    ld.global.f32 %r16, [%r14+4];         // b = in[row*W + 2c + 1]
    // Stage the pair through shared memory, as the original tiles do.
    mov.u32      %r17, %tid.x;
    shl.u32      %r18, %r17, 3;
    st.shared.f32 [%r18], %r15;
    st.shared.f32 [%r18+4], %r16;
    bar.sync;
    ld.shared.f32 %r19, [%r18];
    ld.shared.f32 %r20, [%r18+4];
    add.f32      %r21, %r19, %r20;
    mul.f32      %r21, %r21, 0.5;         // average
    sub.f32      %r22, %r19, %r20;
    mul.f32      %r22, %r22, 0.5;         // detail
    ld.param.u32 %r23, [out];
    add.u32      %r24, %r10, %r8;         // row*W + c
    shl.u32      %r25, %r24, 2;
    add.u32      %r26, %r23, %r25;
    st.global.f32 [%r26], %r21;
    add.u32      %r27, %r24, %r5;         // row*W + W/2 + c
    shl.u32      %r28, %r27, 2;
    add.u32      %r29, %r23, %r28;
    st.global.f32 [%r29], %r22;
EXIT:
    exit;

.kernel dwt_cols
.param .u32 in
.param .u32 out
.param .u32 W
.param .u32 H
.shared 2048
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // pair index
    ld.param.u32 %r3, [W];
    ld.param.u32 %r4, [H];
    shr.u32      %r5, %r4, 1;             // H/2
    mul.u32      %r6, %r5, %r3;           // total pairs
    setp.ge.u32  %p0, %r2, %r6;
@%p0 bra EXIT;
    div.u32      %r7, %r2, %r3;           // pair row
    rem.u32      %r8, %r2, %r3;           // column
    ld.param.u32 %r9, [in];
    shl.u32      %r10, %r7, 1;            // 2r
    mad.u32      %r11, %r10, %r3, %r8;    // (2r)*W + c
    shl.u32      %r12, %r11, 2;
    add.u32      %r13, %r9, %r12;
    ld.global.f32 %r14, [%r13];           // a
    add.u32      %r15, %r11, %r3;         // (2r+1)*W + c
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r9, %r16;
    ld.global.f32 %r18, [%r17];           // b
    mov.u32      %r19, %tid.x;
    shl.u32      %r20, %r19, 3;
    st.shared.f32 [%r20], %r14;
    st.shared.f32 [%r20+4], %r18;
    bar.sync;
    ld.shared.f32 %r21, [%r20];
    ld.shared.f32 %r22, [%r20+4];
    add.f32      %r23, %r21, %r22;
    mul.f32      %r23, %r23, 0.5;
    sub.f32      %r24, %r21, %r22;
    mul.f32      %r24, %r24, 0.5;
    ld.param.u32 %r25, [out];
    mad.u32      %r26, %r7, %r3, %r8;     // r*W + c
    shl.u32      %r27, %r26, 2;
    add.u32      %r28, %r25, %r27;
    st.global.f32 [%r28], %r23;
    add.u32      %r29, %r7, %r5;          // (r + H/2)
    mad.u32      %r30, %r29, %r3, %r8;
    shl.u32      %r31, %r30, 2;
    add.u32      %r32, %r25, %r31;
    st.global.f32 [%r32], %r24;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "dwt",
		Category:    Image,
		Description: "one-level 2-D Haar discrete wavelet transform (Rodinia dwt2d)",
		DataSet:     "512×512 float image",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 512
			}
			rng := rand.New(rand.NewSource(p.Seed + 6))
			m := mem.New()
			prog := ptx.MustParse(dwtSrc)
			rows := prog.MustKernel("dwt_rows")
			cols := prog.MustKernel("dwt_cols")

			img := randF32s(rng, n*n, 0, 255)
			imgB := m.AllocF32s(img)
			tmpB := m.Alloc(uint32(4 * n * n))
			outB := m.Alloc(uint32(4 * n * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "dwt_rows",
				CTAs:          grid1D(n*n/2, 256),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				if err := exec(launch1D(rows, n*n/2, 256, imgB, tmpB, uint32(n), uint32(n))); err != nil {
					return err
				}
				return exec(launch1D(cols, n*n/2, 256, tmpB, outB, uint32(n), uint32(n)))
			}
			inst.Verify = func() error {
				tmp := make([]float32, n*n)
				for r := 0; r < n; r++ {
					for c := 0; c < n/2; c++ {
						a, b := img[r*n+2*c], img[r*n+2*c+1]
						tmp[r*n+c] = (a + b) * 0.5
						tmp[r*n+n/2+c] = (a - b) * 0.5
					}
				}
				want := make([]float32, n*n)
				for r := 0; r < n/2; r++ {
					for c := 0; c < n; c++ {
						a, b := tmp[(2*r)*n+c], tmp[(2*r+1)*n+c]
						want[r*n+c] = (a + b) * 0.5
						want[(r+n/2)*n+c] = (a - b) * 0.5
					}
				}
				return checkF32(m, outB, want, 1e-4, "dwt out")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// htw — heartwall-style template tracking: each CTA stages an image region
// in shared memory and computes integer SSD against several templates with
// shared-memory tree reductions (shared-memory heavy, as Figure 9 shows).
// ---------------------------------------------------------------------------

const htwSrc = `
.kernel htw
.param .u32 img
.param .u32 tmpl
.param .u32 ssd
.param .u32 K
.shared 2048
    mov.u32      %r0, %tid.x;             // 256 threads
    mov.u32      %r1, %ctaid.x;           // region
    mov.u32      %r2, 256;
    mad.u32      %r3, %r1, %r2, %r0;      // region*256 + tid
    ld.param.u32 %r4, [img];
    shl.u32      %r5, %r3, 2;
    add.u32      %r6, %r4, %r5;
    ld.global.u32 %r7, [%r6];             // pixel (deterministic)
    shl.u32      %r8, %r0, 2;             // shared slot
    ld.param.u32 %r9, [tmpl];
    ld.param.u32 %r10, [K];
    mov.u32      %r11, 0;                 // k
KLOOP:
    setp.ge.u32  %p0, %r11, %r10;
@%p0 bra EXIT;
    mad.u32      %r12, %r11, %r2, %r0;    // k*256 + tid
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r9, %r13;
    ld.global.u32 %r15, [%r14];           // template pixel
    sub.s32      %r16, %r7, %r15;
    mul.u32      %r17, %r16, %r16;        // squared diff
    st.shared.u32 [%r8], %r17;
    bar.sync;
    mov.u32      %r18, 128;               // reduction stride
RED:
    setp.eq.u32  %p1, %r18, 0;
@%p1 bra WRITE;
    setp.ge.u32  %p2, %r0, %r18;
@%p2 bra SKIP;
    shl.u32      %r19, %r18, 2;
    add.u32      %r20, %r8, %r19;
    ld.shared.u32 %r21, [%r20];
    ld.shared.u32 %r22, [%r8];
    add.u32      %r23, %r21, %r22;
    st.shared.u32 [%r8], %r23;
SKIP:
    bar.sync;
    shr.u32      %r18, %r18, 1;
    bra RED;
WRITE:
    setp.ne.u32  %p3, %r0, 0;
@%p3 bra NEXT;
    ld.shared.u32 %r24, [0];
    ld.param.u32 %r25, [ssd];
    mad.u32      %r26, %r1, %r10, %r11;   // region*K + k
    shl.u32      %r27, %r26, 2;
    add.u32      %r28, %r25, %r27;
    st.global.u32 [%r28], %r24;
NEXT:
    bar.sync;
    add.u32      %r11, %r11, 1;
    bra KLOOP;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "htw",
		Category:    Image,
		Description: "heartwall-style region tracking: shared-memory SSD template matching",
		DataSet:     "256 regions × 256 px, 4 templates, 4 frames",
		Setup: func(p Params) (*Instance, error) {
			regions := p.Size
			if regions == 0 {
				regions = 256
			}
			const kTemplates = 4
			const frames = 4
			rng := rand.New(rand.NewSource(p.Seed + 7))
			m := mem.New()
			prog := ptx.MustParse(htwSrc)
			k := prog.MustKernel("htw")

			npix := regions * 256
			imgs := make([][]uint32, frames)
			for f := range imgs {
				imgs[f] = make([]uint32, npix)
				for i := range imgs[f] {
					imgs[f][i] = uint32(rng.Intn(256))
				}
			}
			tmpl := make([]uint32, kTemplates*256)
			for i := range tmpl {
				tmpl[i] = uint32(rng.Intn(256))
			}
			tmplB := m.AllocU32s(tmpl)
			imgBs := make([]uint32, frames)
			ssdBs := make([]uint32, frames)
			for f := 0; f < frames; f++ {
				imgBs[f] = m.AllocU32s(imgs[f])
				ssdBs[f] = m.Alloc(uint32(4 * regions * kTemplates))
			}

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "htw",
				CTAs:          regions,
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				for f := 0; f < frames; f++ {
					l := launch1D(k, regions*256, 256, imgBs[f], tmplB, ssdBs[f], kTemplates)
					if err := exec(l); err != nil {
						return err
					}
				}
				return nil
			}
			inst.Verify = func() error {
				for f := 0; f < frames; f++ {
					want := make([]uint32, regions*kTemplates)
					for rgn := 0; rgn < regions; rgn++ {
						for t := 0; t < kTemplates; t++ {
							var sum uint32
							for i := 0; i < 256; i++ {
								d := imgs[f][rgn*256+i] - tmpl[t*256+i]
								sum += d * d
							}
							want[rgn*kTemplates+t] = sum
						}
					}
					if err := checkU32(m, ssdBs[f], want, "htw ssd"); err != nil {
						return err
					}
				}
				return nil
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// mriq — MRI Q-matrix computation (Parboil mri-q): per-pixel loop over the
// k-space samples held in constant memory; transcendental-heavy with a tiny
// global-load fraction, exactly the profile Table I shows for mriq.
// ---------------------------------------------------------------------------

const mriqSrc = `
.kernel mriq
.param .u32 xpos
.param .u32 ypos
.param .u32 zpos
.param .u32 kbase
.param .u32 qr
.param .u32 qi
.param .u32 numK
.param .u32 numX
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // pixel
    ld.param.u32 %r32, [numX];
    setp.ge.u32  %p1, %r2, %r32;
@%p1 bra DONE;
    shl.u32      %r3, %r2, 2;
    ld.param.u32 %r4, [xpos];
    add.u32      %r5, %r4, %r3;
    ld.global.f32 %r6, [%r5];             // x
    ld.param.u32 %r7, [ypos];
    add.u32      %r8, %r7, %r3;
    ld.global.f32 %r9, [%r8];             // y
    ld.param.u32 %r10, [zpos];
    add.u32      %r11, %r10, %r3;
    ld.global.f32 %r12, [%r11];           // z
    ld.param.u32 %r13, [kbase];           // constant-space sample table
    ld.param.u32 %r14, [numK];
    mov.f32      %r15, 0.0;               // Qr
    mov.f32      %r16, 0.0;               // Qi
    mov.u32      %r17, 0;                 // k
LOOP:
    setp.ge.u32  %p0, %r17, %r14;
@%p0 bra STORE;
    mul.u32      %r18, %r17, 20;          // 5 floats per sample
    add.u32      %r19, %r13, %r18;
    ld.const.f32 %r20, [%r19];            // kx
    ld.const.f32 %r21, [%r19+4];          // ky
    ld.const.f32 %r22, [%r19+8];          // kz
    ld.const.f32 %r23, [%r19+12];         // phiR
    ld.const.f32 %r24, [%r19+16];         // phiI
    mul.f32      %r25, %r20, %r6;
    mad.f32      %r25, %r21, %r9, %r25;
    mad.f32      %r25, %r22, %r12, %r25;  // kx*x + ky*y + kz*z
    mul.f32      %r25, %r25, 6.2831853;   // 2*pi*arg
    cos.f32      %r26, %r25;
    sin.f32      %r27, %r25;
    mad.f32      %r15, %r23, %r26, %r15;  // Qr += phiR*cos
    mad.f32      %r16, %r24, %r27, %r16;  // Qi += phiI*sin
    add.u32      %r17, %r17, 1;
    bra LOOP;
STORE:
    ld.param.u32 %r28, [qr];
    add.u32      %r29, %r28, %r3;
    st.global.f32 [%r29], %r15;
    ld.param.u32 %r30, [qi];
    add.u32      %r31, %r30, %r3;
    st.global.f32 [%r31], %r16;
DONE:
    exit;
`

func init() {
	register(&Workload{
		Name:        "mriq",
		Category:    Image,
		Description: "MRI Q-matrix calibration, sin/cos heavy (Parboil mri-q)",
		DataSet:     "16384 pixels × 256 k-space samples",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 16384
			}
			numK := 256
			if n < 1024 {
				numK = 64
			}
			rng := rand.New(rand.NewSource(p.Seed + 8))
			m := mem.New()
			prog := ptx.MustParse(mriqSrc)
			k := prog.MustKernel("mriq")

			x := randF32s(rng, n, -1, 1)
			y := randF32s(rng, n, -1, 1)
			z := randF32s(rng, n, -1, 1)
			samples := randF32s(rng, numK*5, -0.5, 0.5)
			xB, yB, zB := m.AllocF32s(x), m.AllocF32s(y), m.AllocF32s(z)
			kB := m.AllocF32s(samples)
			qrB := m.Alloc(uint32(4 * n))
			qiB := m.Alloc(uint32(4 * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "mriq",
				CTAs:          grid1D(n, 256),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				return exec(launch1D(k, n, 256, xB, yB, zB, kB, qrB, qiB, uint32(numK), uint32(n)))
			}
			inst.Verify = func() error {
				wantR := make([]float32, n)
				wantI := make([]float32, n)
				for i := 0; i < n; i++ {
					var qr, qi float32
					for kk := 0; kk < numK; kk++ {
						s := samples[kk*5:]
						arg := s[0]*x[i] + s[1]*y[i]
						arg = s[2]*z[i] + arg
						arg = arg * 6.2831853
						qr = s[3]*float32(math.Cos(float64(arg))) + qr
						qi = s[4]*float32(math.Sin(float64(arg))) + qi
					}
					wantR[i], wantI[i] = qr, qi
				}
				if err := checkF32(m, qrB, wantR, 1e-2, "mriq qr"); err != nil {
					return err
				}
				return checkF32(m, qiB, wantI, 1e-2, "mriq qi")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// bpr — back-propagation layer-forward (Rodinia backprop): each 16×16 CTA
// stages 16 input units in shared memory, multiplies by the weight tile, and
// tree-reduces partial sums per hidden unit.
// ---------------------------------------------------------------------------

const bprSrc = `
.kernel bpr_forward
.param .u32 input
.param .u32 weights
.param .u32 partial
.param .u32 hid
.shared 1088
    mov.u32      %r0, %tid.x;             // hidden index j (0..15)
    mov.u32      %r1, %tid.y;             // row within tile (0..15)
    mov.u32      %r2, %ctaid.x;           // input tile
    mov.u32      %r3, 16;
    mad.u32      %r4, %r2, %r3, %r1;      // global input index i
    // One column of threads stages the input tile into shared[0..63].
    setp.ne.u32  %p0, %r0, 0;
@%p0 bra WAIT;
    ld.param.u32 %r5, [input];
    shl.u32      %r6, %r4, 2;
    add.u32      %r7, %r5, %r6;
    ld.global.f32 %r8, [%r7];             // input[i]
    shl.u32      %r9, %r1, 2;
    st.shared.f32 [%r9], %r8;
WAIT:
    bar.sync;
    // Each thread: partial = input[i] * w[i*hid + j], staged at
    // shared[64 + (ty*16+tx)].
    shl.u32      %r10, %r1, 2;
    ld.shared.f32 %r11, [%r10];           // input[i] from shared
    ld.param.u32 %r12, [weights];
    ld.param.u32 %r13, [hid];
    mad.u32      %r14, %r4, %r13, %r0;    // i*hid + j
    shl.u32      %r15, %r14, 2;
    add.u32      %r16, %r12, %r15;
    ld.global.f32 %r17, [%r16];           // w[i][j]
    mul.f32      %r18, %r11, %r17;
    mad.u32      %r19, %r1, %r3, %r0;     // ty*16 + tx
    shl.u32      %r20, %r19, 2;
    add.u32      %r21, %r20, 64;
    st.shared.f32 [%r21], %r18;
    bar.sync;
    // Tree reduction over ty for each j.
    mov.u32      %r22, 8;                 // stride over rows
RED:
    setp.eq.u32  %p1, %r22, 0;
@%p1 bra WRITE;
    setp.ge.u32  %p2, %r1, %r22;
@%p2 bra SKIP;
    add.u32      %r23, %r1, %r22;
    mad.u32      %r24, %r23, %r3, %r0;
    shl.u32      %r25, %r24, 2;
    add.u32      %r26, %r25, 64;
    ld.shared.f32 %r27, [%r26];
    ld.shared.f32 %r28, [%r21];
    add.f32      %r29, %r27, %r28;
    st.shared.f32 [%r21], %r29;
SKIP:
    bar.sync;
    shr.u32      %r22, %r22, 1;
    bra RED;
WRITE:
    setp.ne.u32  %p3, %r1, 0;
@%p3 bra EXIT;
    shl.u32      %r30, %r0, 2;
    add.u32      %r31, %r30, 64;
    ld.shared.f32 %r32, [%r31];           // column sum for hidden j
    ld.param.u32 %r33, [partial];
    mad.u32      %r34, %r2, %r13, %r0;    // tile*hid + j
    shl.u32      %r35, %r34, 2;
    add.u32      %r36, %r33, %r35;
    st.global.f32 [%r36], %r32;
EXIT:
    exit;

.kernel bpr_adjust
.param .u32 weights
.param .u32 input
.param .u32 delta
.param .u32 hid
.param .u32 nin
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // weight index i*hid + j
    ld.param.u32 %r3, [hid];
    ld.param.u32 %r4, [nin];
    mul.u32      %r5, %r3, %r4;
    setp.ge.u32  %p0, %r2, %r5;
@%p0 bra EXIT;
    div.u32      %r6, %r2, %r3;           // i
    rem.u32      %r7, %r2, %r3;           // j
    ld.param.u32 %r8, [input];
    shl.u32      %r9, %r6, 2;
    add.u32      %r10, %r8, %r9;
    ld.global.f32 %r11, [%r10];           // input[i]
    ld.param.u32 %r12, [delta];
    shl.u32      %r13, %r7, 2;
    add.u32      %r14, %r12, %r13;
    ld.global.f32 %r15, [%r14];           // delta[j]
    ld.param.u32 %r16, [weights];
    shl.u32      %r17, %r2, 2;
    add.u32      %r18, %r16, %r17;
    ld.global.f32 %r19, [%r18];           // w[i][j]
    mul.f32      %r20, %r11, %r15;
    mad.f32      %r21, %r20, 0.3, %r19;   // w += eta*delta*input
    st.global.f32 [%r18], %r21;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "bpr",
		Category:    Image,
		Description: "neural-net layer forward + weight adjust (Rodinia backprop)",
		DataSet:     "65536 input units × 16 hidden units",
		Setup: func(p Params) (*Instance, error) {
			nin := p.Size
			if nin == 0 {
				nin = 65536
			}
			const hid = 16
			rng := rand.New(rand.NewSource(p.Seed + 9))
			m := mem.New()
			prog := ptx.MustParse(bprSrc)
			fwd := prog.MustKernel("bpr_forward")
			adj := prog.MustKernel("bpr_adjust")

			input := randF32s(rng, nin, 0, 1)
			weights := randF32s(rng, nin*hid, -0.5, 0.5)
			delta := randF32s(rng, hid, -0.1, 0.1)
			inB := m.AllocF32s(input)
			wB := m.AllocF32s(weights)
			dB := m.AllocF32s(delta)
			tiles := nin / 16
			partB := m.Alloc(uint32(4 * tiles * hid))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "bpr_forward",
				CTAs:          tiles,
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				// Grid: one 16×16 CTA per 16-row input tile.
				fl := launch2D(fwd, nin, 16, 16, 16, inB, wB, partB, hid)
				if err := exec(fl); err != nil {
					return err
				}
				return exec(launch1D(adj, nin*hid, 256, wB, inB, dB, hid, uint32(nin)))
			}
			inst.Verify = func() error {
				// Partial sums per tile.
				want := make([]float32, tiles*hid)
				for t := 0; t < tiles; t++ {
					for j := 0; j < hid; j++ {
						// Tree reduction order: stride 8,4,2,1 over 16 rows.
						var vals [16]float32
						for r := 0; r < 16; r++ {
							i := t*16 + r
							vals[r] = input[i] * weights[i*hid+j]
						}
						for stride := 8; stride > 0; stride /= 2 {
							for r := 0; r < stride; r++ {
								vals[r] = vals[r+stride] + vals[r]
							}
						}
						want[t*hid+j] = vals[0]
					}
				}
				if err := checkF32(m, partB, want, 1e-3, "bpr partial"); err != nil {
					return err
				}
				// Adjusted weights.
				wantW := make([]float32, nin*hid)
				for i := 0; i < nin; i++ {
					for j := 0; j < hid; j++ {
						wantW[i*hid+j] = input[i]*delta[j]*0.3 + weights[i*hid+j]
					}
				}
				return checkF32(m, wB, wantW, 1e-3, "bpr weights")
			}
			return inst, nil
		},
	})
}

// ---------------------------------------------------------------------------
// srad — speckle-reducing anisotropic diffusion (Rodinia srad): neighbour
// offsets come from precomputed index arrays, so the J/c loads through them
// are non-deterministic — the small sliver Figure 1 shows for srad.
// ---------------------------------------------------------------------------

const sradSrc = `
.kernel srad1
.param .u32 J
.param .u32 dN
.param .u32 dS
.param .u32 dW
.param .u32 dE
.param .u32 cArr
.param .u32 iN
.param .u32 iS
.param .u32 jW
.param .u32 jE
.param .u32 cols
.param .u32 size
.param .f32 q0sqr
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // cell
    ld.param.u32 %r3, [size];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [cols];
    div.u32      %r5, %r2, %r4;           // row
    rem.u32      %r6, %r2, %r4;           // col
    ld.param.u32 %r7, [J];
    shl.u32      %r8, %r2, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.f32 %r10, [%r9];            // Jc (deterministic)
    // North: row index from the iN table.
    ld.param.u32 %r11, [iN];
    shl.u32      %r12, %r5, 2;
    add.u32      %r13, %r11, %r12;
    ld.global.u32 %r14, [%r13];           // iN[row] (deterministic)
    mad.u32      %r15, %r14, %r4, %r6;
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r7, %r16;
    ld.global.f32 %r18, [%r17];           // J[iN[row]][col] (non-det)
    sub.f32      %r18, %r18, %r10;        // dN
    // South.
    ld.param.u32 %r19, [iS];
    add.u32      %r20, %r19, %r12;
    ld.global.u32 %r21, [%r20];
    mad.u32      %r22, %r21, %r4, %r6;
    shl.u32      %r23, %r22, 2;
    add.u32      %r24, %r7, %r23;
    ld.global.f32 %r25, [%r24];
    sub.f32      %r25, %r25, %r10;        // dS
    // West.
    ld.param.u32 %r26, [jW];
    shl.u32      %r27, %r6, 2;
    add.u32      %r28, %r26, %r27;
    ld.global.u32 %r29, [%r28];
    mad.u32      %r30, %r5, %r4, %r29;
    shl.u32      %r31, %r30, 2;
    add.u32      %r32, %r7, %r31;
    ld.global.f32 %r33, [%r32];
    sub.f32      %r33, %r33, %r10;        // dW
    // East.
    ld.param.u32 %r34, [jE];
    add.u32      %r35, %r34, %r27;
    ld.global.u32 %r36, [%r35];
    mad.u32      %r37, %r5, %r4, %r36;
    shl.u32      %r38, %r37, 2;
    add.u32      %r39, %r7, %r38;
    ld.global.f32 %r40, [%r39];
    sub.f32      %r40, %r40, %r10;        // dE
    // G2 = (dN^2+dS^2+dW^2+dE^2) / Jc^2 ; L = (dN+dS+dW+dE)/Jc
    mul.f32      %r41, %r18, %r18;
    mad.f32      %r41, %r25, %r25, %r41;
    mad.f32      %r41, %r33, %r33, %r41;
    mad.f32      %r41, %r40, %r40, %r41;
    mul.f32      %r42, %r10, %r10;
    div.f32      %r41, %r41, %r42;        // G2
    add.f32      %r43, %r18, %r25;
    add.f32      %r43, %r43, %r33;
    add.f32      %r43, %r43, %r40;
    div.f32      %r43, %r43, %r10;        // L
    mul.f32      %r44, %r41, 0.5;
    mul.f32      %r45, %r43, %r43;
    mul.f32      %r45, %r45, 0.0625;
    sub.f32      %r44, %r44, %r45;        // num
    mul.f32      %r46, %r43, 0.25;
    add.f32      %r46, %r46, 1.0;         // den
    mul.f32      %r47, %r46, %r46;
    div.f32      %r48, %r44, %r47;        // qsqr
    ld.param.f32 %r49, [q0sqr];
    sub.f32      %r50, %r48, %r49;
    add.f32      %r51, %r49, 1.0;
    mul.f32      %r52, %r49, %r51;
    div.f32      %r53, %r50, %r52;
    add.f32      %r54, %r53, 1.0;
    rcp.f32      %r55, %r54;              // c = 1/(1 + ...)
    max.f32      %r55, %r55, 0.0;
    min.f32      %r55, %r55, 1.0;
    // Store c and the four gradients.
    ld.param.u32 %r56, [cArr];
    add.u32      %r57, %r56, %r8;
    st.global.f32 [%r57], %r55;
    ld.param.u32 %r58, [dN];
    add.u32      %r59, %r58, %r8;
    st.global.f32 [%r59], %r18;
    ld.param.u32 %r60, [dS];
    add.u32      %r61, %r60, %r8;
    st.global.f32 [%r61], %r25;
    ld.param.u32 %r62, [dW];
    add.u32      %r63, %r62, %r8;
    st.global.f32 [%r63], %r33;
    ld.param.u32 %r64, [dE];
    add.u32      %r65, %r64, %r8;
    st.global.f32 [%r65], %r40;
EXIT:
    exit;

.kernel srad2
.param .u32 J
.param .u32 dN
.param .u32 dS
.param .u32 dW
.param .u32 dE
.param .u32 cArr
.param .u32 iS
.param .u32 jE
.param .u32 cols
.param .u32 size
.param .f32 lambda
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // cell
    ld.param.u32 %r3, [size];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [cols];
    div.u32      %r5, %r2, %r4;           // row
    rem.u32      %r6, %r2, %r4;           // col
    ld.param.u32 %r7, [cArr];
    shl.u32      %r8, %r2, 2;
    add.u32      %r9, %r7, %r8;
    ld.global.f32 %r10, [%r9];            // cN = cW = c[cell] (deterministic)
    // cS = c[iS[row]][col] (non-deterministic).
    ld.param.u32 %r11, [iS];
    shl.u32      %r12, %r5, 2;
    add.u32      %r13, %r11, %r12;
    ld.global.u32 %r14, [%r13];
    mad.u32      %r15, %r14, %r4, %r6;
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r7, %r16;
    ld.global.f32 %r18, [%r17];           // cS
    // cE = c[row][jE[col]] (non-deterministic).
    ld.param.u32 %r19, [jE];
    shl.u32      %r20, %r6, 2;
    add.u32      %r21, %r19, %r20;
    ld.global.u32 %r22, [%r21];
    mad.u32      %r23, %r5, %r4, %r22;
    shl.u32      %r24, %r23, 2;
    add.u32      %r25, %r7, %r24;
    ld.global.f32 %r26, [%r25];           // cE
    // D = cN*dN + cS*dS + cW*dW + cE*dE
    ld.param.u32 %r27, [dN];
    add.u32      %r28, %r27, %r8;
    ld.global.f32 %r29, [%r28];
    ld.param.u32 %r30, [dS];
    add.u32      %r31, %r30, %r8;
    ld.global.f32 %r32, [%r31];
    ld.param.u32 %r33, [dW];
    add.u32      %r34, %r33, %r8;
    ld.global.f32 %r35, [%r34];
    ld.param.u32 %r36, [dE];
    add.u32      %r37, %r36, %r8;
    ld.global.f32 %r38, [%r37];
    mul.f32      %r39, %r10, %r29;        // cN*dN
    mad.f32      %r39, %r18, %r32, %r39;  // + cS*dS
    mad.f32      %r39, %r10, %r35, %r39;  // + cW*dW
    mad.f32      %r39, %r26, %r38, %r39;  // + cE*dE
    // J += 0.25 * lambda * D
    ld.param.f32 %r40, [lambda];
    mul.f32      %r41, %r40, 0.25;
    ld.param.u32 %r42, [J];
    add.u32      %r43, %r42, %r8;
    ld.global.f32 %r44, [%r43];
    mad.f32      %r45, %r41, %r39, %r44;
    st.global.f32 [%r43], %r45;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "srad",
		Category:    Image,
		Description: "speckle-reducing anisotropic diffusion (Rodinia srad)",
		DataSet:     "256×256 float image, 4 iterations",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 256
			}
			const iters = 4
			const lambda = float32(0.5)
			rng := rand.New(rand.NewSource(p.Seed + 10))
			m := mem.New()
			prog := ptx.MustParse(sradSrc)
			k1 := prog.MustKernel("srad1")
			k2 := prog.MustKernel("srad2")

			size := n * n
			j := randF32s(rng, size, 1, 2) // exp-scaled image, strictly positive
			iN := make([]uint32, n)
			iS := make([]uint32, n)
			jW := make([]uint32, n)
			jE := make([]uint32, n)
			for i := 0; i < n; i++ {
				iN[i], iS[i], jW[i], jE[i] = uint32(i-1), uint32(i+1), uint32(i-1), uint32(i+1)
			}
			iN[0], jW[0] = 0, 0
			iS[n-1], jE[n-1] = uint32(n-1), uint32(n-1)

			jB := m.AllocF32s(j)
			dNB := m.Alloc(uint32(4 * size))
			dSB := m.Alloc(uint32(4 * size))
			dWB := m.Alloc(uint32(4 * size))
			dEB := m.Alloc(uint32(4 * size))
			cB := m.Alloc(uint32(4 * size))
			iNB, iSB, jWB, jEB := m.AllocU32s(iN), m.AllocU32s(iS), m.AllocU32s(jW), m.AllocU32s(jE)

			const q0sqr = float32(0.05)

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "srad1",
				CTAs:          grid1D(size, 256),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				for it := 0; it < iters; it++ {
					if err := exec(launch1D(k1, size, 256,
						jB, dNB, dSB, dWB, dEB, cB, iNB, iSB, jWB, jEB,
						uint32(n), uint32(size), f32bits(q0sqr))); err != nil {
						return err
					}
					if err := exec(launch1D(k2, size, 256,
						jB, dNB, dSB, dWB, dEB, cB, iSB, jEB,
						uint32(n), uint32(size), f32bits(lambda))); err != nil {
						return err
					}
				}
				return nil
			}
			inst.Verify = func() error {
				ref := append([]float32(nil), j...)
				dN := make([]float32, size)
				dS := make([]float32, size)
				dW := make([]float32, size)
				dE := make([]float32, size)
				c := make([]float32, size)
				for it := 0; it < iters; it++ {
					for cell := 0; cell < size; cell++ {
						r, cc := cell/n, cell%n
						jc := ref[cell]
						dN[cell] = ref[int(iN[r])*n+cc] - jc
						dS[cell] = ref[int(iS[r])*n+cc] - jc
						dW[cell] = ref[r*n+int(jW[cc])] - jc
						dE[cell] = ref[r*n+int(jE[cc])] - jc
						g2 := (dN[cell]*dN[cell] + dS[cell]*dS[cell] + dW[cell]*dW[cell] + dE[cell]*dE[cell]) / (jc * jc)
						l := (dN[cell] + dS[cell] + dW[cell] + dE[cell]) / jc
						num := g2*0.5 - l*l*0.0625
						den := l*0.25 + 1
						qsqr := num / (den * den)
						cv := 1 / ((qsqr-q0sqr)/(q0sqr*(q0sqr+1)) + 1)
						if cv < 0 {
							cv = 0
						}
						if cv > 1 {
							cv = 1
						}
						c[cell] = cv
					}
					for cell := 0; cell < size; cell++ {
						r, cc := cell/n, cell%n
						d := c[cell]*dN[cell] + c[int(iS[r])*n+cc]*dS[cell] +
							c[cell]*dW[cell] + c[r*n+int(jE[cc])]*dE[cell]
						ref[cell] += lambda * 0.25 * d
					}
				}
				return checkF32(m, jB, ref, 1e-2, "srad J")
			}
			return inst, nil
		},
	})
}
