package workloads

import (
	"fmt"
	"math"
	"math/rand"

	"critload/internal/mem"
	"critload/internal/ptx"
)

// mmSrc is a dense matrix-multiply kernel: one thread per output element,
// linear row/column indexing from thread and CTA ids (all loads
// deterministic, as the paper observes for linear algebra).
const mmSrc = `
.kernel mm
.param .u32 A
.param .u32 B
.param .u32 C
.param .u32 N
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // col
    mov.u32      %r3, %ctaid.y;
    mov.u32      %r4, %ntid.y;
    mad.u32      %r5, %r3, %r4, %tid.y;   // row
    ld.param.u32 %r6, [N];
    setp.ge.u32  %p0, %r2, %r6;
@%p0 bra EXIT;
    setp.ge.u32  %p1, %r5, %r6;
@%p1 bra EXIT;
    mov.f32      %r7, 0.0;                // acc
    mov.u32      %r8, 0;                  // k
    ld.param.u32 %r9, [A];
    ld.param.u32 %r10, [B];
    mul.u32      %r11, %r5, %r6;          // row*N
LOOP:
    setp.ge.u32  %p2, %r8, %r6;
@%p2 bra STORE;
    add.u32      %r12, %r11, %r8;
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r9, %r13;
    ld.global.f32 %r15, [%r14];           // A[row*N+k]
    mul.u32      %r16, %r8, %r6;
    add.u32      %r17, %r16, %r2;
    shl.u32      %r18, %r17, 2;
    add.u32      %r19, %r10, %r18;
    ld.global.f32 %r20, [%r19];           // B[k*N+col]
    mad.f32      %r7, %r15, %r20, %r7;
    add.u32      %r8, %r8, 1;
    bra LOOP;
STORE:
    add.u32      %r21, %r11, %r2;
    shl.u32      %r22, %r21, 2;
    ld.param.u32 %r23, [C];
    add.u32      %r24, %r23, %r22;
    st.global.f32 [%r24], %r7;
EXIT:
    exit;
`

func cpuMatMul(a, b []float32, n int) []float32 {
	out := make([]float32, n*n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			var acc float32
			for k := 0; k < n; k++ {
				acc = a[r*n+k]*b[k*n+c] + acc
			}
			out[r*n+c] = acc
		}
	}
	return out
}

func init() {
	register(&Workload{
		Name:        "2mm",
		Category:    Linear,
		Description: "two chained dense matrix multiplications (PolyBench 2mm)",
		DataSet:     "256×256 float matrices",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 256
			}
			if n%16 != 0 {
				return nil, fmt.Errorf("2mm: size %d not a multiple of 16", n)
			}
			rng := rand.New(rand.NewSource(p.Seed + 1))
			m := mem.New()
			prog := ptx.MustParse(mmSrc)
			k := prog.MustKernel("mm")

			a := randF32s(rng, n*n, -1, 1)
			b := randF32s(rng, n*n, -1, 1)
			c := randF32s(rng, n*n, -1, 1)
			aB, bB, cB := m.AllocF32s(a), m.AllocF32s(b), m.AllocF32s(c)
			tmpB := m.Alloc(uint32(4 * n * n))
			outB := m.Alloc(uint32(4 * n * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "mm",
				CTAs:          (n / 16) * (n / 16),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				if err := exec(launch2D(k, n, n, 16, 16, aB, bB, tmpB, uint32(n))); err != nil {
					return err
				}
				return exec(launch2D(k, n, n, 16, 16, tmpB, cB, outB, uint32(n)))
			}
			inst.Verify = func() error {
				tmp := cpuMatMul(a, b, n)
				want := cpuMatMul(tmp, c, n)
				return checkF32(m, outB, want, 1e-3, "2mm out")
			}
			return inst, nil
		},
	})
}

// Gaussian elimination (Rodinia gaussian): fan1 computes the column of
// multipliers, fan2 applies the rank-1 update. Host loops over pivots.
const gausSrc = `
.kernel fan1
.param .u32 a
.param .u32 mults
.param .u32 N
.param .u32 t
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // idx
    ld.param.u32 %r3, [N];
    ld.param.u32 %r4, [t];
    sub.u32      %r5, %r3, %r4;
    sub.u32      %r5, %r5, 1;             // rows below pivot
    setp.ge.u32  %p0, %r2, %r5;
@%p0 bra EXIT;
    add.u32      %r6, %r2, %r4;
    add.u32      %r6, %r6, 1;             // i = t + 1 + idx
    ld.param.u32 %r7, [a];
    mad.u32      %r8, %r6, %r3, %r4;      // i*N + t
    shl.u32      %r9, %r8, 2;
    add.u32      %r10, %r7, %r9;
    ld.global.f32 %r11, [%r10];           // a[i][t]
    mad.u32      %r12, %r4, %r3, %r4;     // t*N + t
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r7, %r13;
    ld.global.f32 %r15, [%r14];           // a[t][t]
    div.f32      %r16, %r11, %r15;
    ld.param.u32 %r17, [mults];
    add.u32      %r18, %r17, %r9;
    st.global.f32 [%r18], %r16;           // m[i][t]
EXIT:
    exit;

.kernel fan2
.param .u32 a
.param .u32 mults
.param .u32 N
.param .u32 t
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // xidx (column offset)
    mov.u32      %r3, %ctaid.y;
    mov.u32      %r4, %ntid.y;
    mad.u32      %r5, %r3, %r4, %tid.y;   // yidx (row offset)
    ld.param.u32 %r6, [N];
    ld.param.u32 %r7, [t];
    sub.u32      %r8, %r6, %r7;           // cols from pivot
    setp.ge.u32  %p0, %r2, %r8;
@%p0 bra EXIT;
    sub.u32      %r9, %r8, 1;             // rows below pivot
    setp.ge.u32  %p1, %r5, %r9;
@%p1 bra EXIT;
    add.u32      %r10, %r5, %r7;
    add.u32      %r10, %r10, 1;           // i = t + 1 + yidx
    add.u32      %r11, %r2, %r7;          // j = t + xidx
    ld.param.u32 %r12, [a];
    ld.param.u32 %r13, [mults];
    mad.u32      %r14, %r10, %r6, %r7;    // i*N + t
    shl.u32      %r15, %r14, 2;
    add.u32      %r16, %r13, %r15;
    ld.global.f32 %r17, [%r16];           // m[i][t]
    mad.u32      %r18, %r7, %r6, %r11;    // t*N + j
    shl.u32      %r19, %r18, 2;
    add.u32      %r20, %r12, %r19;
    ld.global.f32 %r21, [%r20];           // a[t][j]
    mad.u32      %r22, %r10, %r6, %r11;   // i*N + j
    shl.u32      %r23, %r22, 2;
    add.u32      %r24, %r12, %r23;
    ld.global.f32 %r25, [%r24];           // a[i][j]
    mul.f32      %r26, %r17, %r21;
    sub.f32      %r27, %r25, %r26;
    st.global.f32 [%r24], %r27;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "gaus",
		Category:    Linear,
		Description: "Gaussian elimination, fan1/fan2 kernels (Rodinia gaussian)",
		DataSet:     "192×192 diagonally dominant float matrix",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 192
			}
			rng := rand.New(rand.NewSource(p.Seed + 2))
			m := mem.New()
			prog := ptx.MustParse(gausSrc)
			fan1 := prog.MustKernel("fan1")
			fan2 := prog.MustKernel("fan2")

			a := randF32s(rng, n*n, 0.1, 1)
			for i := 0; i < n; i++ {
				a[i*n+i] += float32(n) // diagonal dominance: stable pivots
			}
			aB := m.AllocF32s(a)
			multsB := m.Alloc(uint32(4 * n * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "fan2",
				CTAs:          grid1D(n, 16) * grid1D(n, 16),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				for t := 0; t < n-1; t++ {
					if err := exec(launch1D(fan1, n-t-1, 256, aB, multsB, uint32(n), uint32(t))); err != nil {
						return err
					}
					if err := exec(launch2D(fan2, n-t, n-t-1, 16, 16, aB, multsB, uint32(n), uint32(t))); err != nil {
						return err
					}
				}
				return nil
			}
			inst.Verify = func() error {
				// CPU elimination in the same arithmetic order.
				ref := append([]float32(nil), a...)
				for t := 0; t < n-1; t++ {
					for i := t + 1; i < n; i++ {
						mult := ref[i*n+t] / ref[t*n+t]
						for j := t; j < n; j++ {
							ref[i*n+j] -= mult * ref[t*n+j]
						}
					}
				}
				return checkF32(m, aB, ref, 1e-2, "gaus a")
			}
			return inst, nil
		},
	})
}

// LU decomposition (PolyBench lu): per pivot k, normalize row k then update
// the trailing submatrix.
const luSrc = `
.kernel lu_norm
.param .u32 a
.param .u32 N
.param .u32 k
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // idx
    ld.param.u32 %r3, [N];
    ld.param.u32 %r4, [k];
    sub.u32      %r5, %r3, %r4;
    sub.u32      %r5, %r5, 1;
    setp.ge.u32  %p0, %r2, %r5;
@%p0 bra EXIT;
    add.u32      %r6, %r2, %r4;
    add.u32      %r6, %r6, 1;             // j = k + 1 + idx
    ld.param.u32 %r7, [a];
    mad.u32      %r8, %r4, %r3, %r6;      // k*N + j
    shl.u32      %r9, %r8, 2;
    add.u32      %r10, %r7, %r9;
    ld.global.f32 %r11, [%r10];
    mad.u32      %r12, %r4, %r3, %r4;     // k*N + k
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r7, %r13;
    ld.global.f32 %r15, [%r14];
    div.f32      %r16, %r11, %r15;
    st.global.f32 [%r10], %r16;
EXIT:
    exit;

.kernel lu_update
.param .u32 a
.param .u32 N
.param .u32 k
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // xidx
    mov.u32      %r3, %ctaid.y;
    mov.u32      %r4, %ntid.y;
    mad.u32      %r5, %r3, %r4, %tid.y;   // yidx
    ld.param.u32 %r6, [N];
    ld.param.u32 %r7, [k];
    sub.u32      %r8, %r6, %r7;
    sub.u32      %r8, %r8, 1;             // trailing size
    setp.ge.u32  %p0, %r2, %r8;
@%p0 bra EXIT;
    setp.ge.u32  %p1, %r5, %r8;
@%p1 bra EXIT;
    add.u32      %r9, %r5, %r7;
    add.u32      %r9, %r9, 1;             // i
    add.u32      %r10, %r2, %r7;
    add.u32      %r10, %r10, 1;           // j
    ld.param.u32 %r11, [a];
    mad.u32      %r12, %r9, %r6, %r7;     // i*N + k
    shl.u32      %r13, %r12, 2;
    add.u32      %r14, %r11, %r13;
    ld.global.f32 %r15, [%r14];
    mad.u32      %r16, %r7, %r6, %r10;    // k*N + j
    shl.u32      %r17, %r16, 2;
    add.u32      %r18, %r11, %r17;
    ld.global.f32 %r19, [%r18];
    mad.u32      %r20, %r9, %r6, %r10;    // i*N + j
    shl.u32      %r21, %r20, 2;
    add.u32      %r22, %r11, %r21;
    ld.global.f32 %r23, [%r22];
    mul.f32      %r24, %r15, %r19;
    sub.f32      %r25, %r23, %r24;
    st.global.f32 [%r22], %r25;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "lu",
		Category:    Linear,
		Description: "LU decomposition without pivoting (PolyBench lu)",
		DataSet:     "192×192 diagonally dominant float matrix",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 192
			}
			rng := rand.New(rand.NewSource(p.Seed + 3))
			m := mem.New()
			prog := ptx.MustParse(luSrc)
			norm := prog.MustKernel("lu_norm")
			update := prog.MustKernel("lu_update")

			a := randF32s(rng, n*n, 0.1, 1)
			for i := 0; i < n; i++ {
				a[i*n+i] += float32(n)
			}
			aB := m.AllocF32s(a)

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "lu_update",
				CTAs:          grid1D(n, 16) * grid1D(n, 16),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				for k := 0; k < n-1; k++ {
					if err := exec(launch1D(norm, n-k-1, 256, aB, uint32(n), uint32(k))); err != nil {
						return err
					}
					if err := exec(launch2D(update, n-k-1, n-k-1, 16, 16, aB, uint32(n), uint32(k))); err != nil {
						return err
					}
				}
				return nil
			}
			inst.Verify = func() error {
				ref := append([]float32(nil), a...)
				for k := 0; k < n-1; k++ {
					for j := k + 1; j < n; j++ {
						ref[k*n+j] /= ref[k*n+k]
					}
					for i := k + 1; i < n; i++ {
						for j := k + 1; j < n; j++ {
							ref[i*n+j] -= ref[i*n+k] * ref[k*n+j]
						}
					}
				}
				return checkF32(m, aB, ref, 1e-2, "lu a")
			}
			return inst, nil
		},
	})
}

// Gram-Schmidt decomposition (PolyBench gramschmidt): per column k, a
// shared-memory norm reduction, a normalization pass, and an update of the
// trailing columns.
const grmSrc = `
.kernel gs_norm
.param .u32 a
.param .u32 rdiag
.param .u32 N
.param .u32 k
.shared 1024
    mov.u32      %r0, %tid.x;             // 256 threads, single CTA
    ld.param.u32 %r1, [N];
    ld.param.u32 %r2, [k];
    ld.param.u32 %r3, [a];
    mov.f32      %r4, 0.0;                // partial
    mov.u32      %r5, %r0;                // i = tid
PART:
    setp.ge.u32  %p0, %r5, %r1;
@%p0 bra REDUCE;
    mad.u32      %r6, %r5, %r1, %r2;      // i*N + k
    shl.u32      %r7, %r6, 2;
    add.u32      %r8, %r3, %r7;
    ld.global.f32 %r9, [%r8];
    mad.f32      %r4, %r9, %r9, %r4;
    add.u32      %r5, %r5, 256;
    bra PART;
REDUCE:
    shl.u32      %r10, %r0, 2;
    st.shared.f32 [%r10], %r4;
    bar.sync;
    mov.u32      %r11, 128;               // stride
STRIDE:
    setp.eq.u32  %p1, %r11, 0;
@%p1 bra WRITE;
    setp.ge.u32  %p2, %r0, %r11;
@%p2 bra SKIP;
    shl.u32      %r12, %r11, 2;
    add.u32      %r13, %r10, %r12;
    ld.shared.f32 %r14, [%r13];
    ld.shared.f32 %r15, [%r10];
    add.f32      %r16, %r14, %r15;
    st.shared.f32 [%r10], %r16;
SKIP:
    bar.sync;
    shr.u32      %r11, %r11, 1;
    bra STRIDE;
WRITE:
    setp.ne.u32  %p3, %r0, 0;
@%p3 bra EXIT;
    ld.shared.f32 %r17, [0];
    sqrt.f32     %r18, %r17;
    ld.param.u32 %r19, [rdiag];
    shl.u32      %r20, %r2, 2;
    add.u32      %r21, %r19, %r20;
    st.global.f32 [%r21], %r18;           // rdiag[k] = ||A[:,k]||
EXIT:
    exit;

.kernel gs_q
.param .u32 a
.param .u32 q
.param .u32 rdiag
.param .u32 N
.param .u32 k
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // i
    ld.param.u32 %r3, [N];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [k];
    ld.param.u32 %r5, [rdiag];
    shl.u32      %r6, %r4, 2;
    add.u32      %r7, %r5, %r6;
    ld.global.f32 %r8, [%r7];             // rdiag[k]
    ld.param.u32 %r9, [a];
    mad.u32      %r10, %r2, %r3, %r4;     // i*N + k
    shl.u32      %r11, %r10, 2;
    add.u32      %r12, %r9, %r11;
    ld.global.f32 %r13, [%r12];
    div.f32      %r14, %r13, %r8;
    ld.param.u32 %r15, [q];
    add.u32      %r16, %r15, %r11;
    st.global.f32 [%r16], %r14;           // q[i][k]
EXIT:
    exit;

.kernel gs_update
.param .u32 a
.param .u32 q
.param .u32 N
.param .u32 k
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // jidx
    ld.param.u32 %r3, [N];
    ld.param.u32 %r4, [k];
    sub.u32      %r5, %r3, %r4;
    sub.u32      %r5, %r5, 1;             // trailing columns
    setp.ge.u32  %p0, %r2, %r5;
@%p0 bra EXIT;
    add.u32      %r6, %r2, %r4;
    add.u32      %r6, %r6, 1;             // j = k + 1 + jidx
    ld.param.u32 %r7, [a];
    ld.param.u32 %r8, [q];
    mov.f32      %r9, 0.0;                // r = q[:,k] . a[:,j]
    mov.u32      %r10, 0;                 // i
DOT:
    setp.ge.u32  %p1, %r10, %r3;
@%p1 bra APPLY;
    mad.u32      %r11, %r10, %r3, %r4;    // i*N + k
    shl.u32      %r12, %r11, 2;
    add.u32      %r13, %r8, %r12;
    ld.global.f32 %r14, [%r13];           // q[i][k]
    mad.u32      %r15, %r10, %r3, %r6;    // i*N + j
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r7, %r16;
    ld.global.f32 %r18, [%r17];           // a[i][j]
    mad.f32      %r9, %r14, %r18, %r9;
    add.u32      %r10, %r10, 1;
    bra DOT;
APPLY:
    mov.u32      %r10, 0;
SUB:
    setp.ge.u32  %p2, %r10, %r3;
@%p2 bra EXIT;
    mad.u32      %r11, %r10, %r3, %r4;
    shl.u32      %r12, %r11, 2;
    add.u32      %r13, %r8, %r12;
    ld.global.f32 %r14, [%r13];           // q[i][k]
    mad.u32      %r15, %r10, %r3, %r6;
    shl.u32      %r16, %r15, 2;
    add.u32      %r17, %r7, %r16;
    ld.global.f32 %r18, [%r17];           // a[i][j]
    mul.f32      %r19, %r14, %r9;
    sub.f32      %r20, %r18, %r19;
    st.global.f32 [%r17], %r20;
    add.u32      %r10, %r10, 1;
    bra SUB;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "grm",
		Category:    Linear,
		Description: "Gram-Schmidt QR decomposition (PolyBench gramschmidt)",
		DataSet:     "64×64 float matrix",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 64
			}
			rng := rand.New(rand.NewSource(p.Seed + 4))
			m := mem.New()
			prog := ptx.MustParse(grmSrc)
			kNorm := prog.MustKernel("gs_norm")
			kQ := prog.MustKernel("gs_q")
			kUpd := prog.MustKernel("gs_update")

			a := randF32s(rng, n*n, 0.1, 1)
			for i := 0; i < n; i++ {
				a[i*n+i] += 2 // keep columns well conditioned
			}
			aB := m.AllocF32s(a)
			qB := m.Alloc(uint32(4 * n * n))
			rdB := m.Alloc(uint32(4 * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "gs_update",
				CTAs:          grid1D(n, 256),
				ThreadsPerCTA: 256,
			}
			inst.Run = func(exec Executor) error {
				for k := 0; k < n; k++ {
					if err := exec(launch1D(kNorm, 256, 256, aB, rdB, uint32(n), uint32(k))); err != nil {
						return err
					}
					if err := exec(launch1D(kQ, n, 256, aB, qB, rdB, uint32(n), uint32(k))); err != nil {
						return err
					}
					if k+1 < n {
						if err := exec(launch1D(kUpd, n-k-1, 256, aB, qB, uint32(n), uint32(k))); err != nil {
							return err
						}
					}
				}
				return nil
			}
			inst.Verify = func() error {
				// CPU modified Gram-Schmidt; Q columns must be orthonormal
				// within tolerance and match the device Q loosely (float
				// summation order differs between the tree reduction and the
				// serial CPU sum, so compare against a tolerance).
				ref := append([]float32(nil), a...)
				q := make([]float32, n*n)
				for k := 0; k < n; k++ {
					var sum float64
					for i := 0; i < n; i++ {
						sum += float64(ref[i*n+k]) * float64(ref[i*n+k])
					}
					norm := float32(math.Sqrt(sum))
					for i := 0; i < n; i++ {
						q[i*n+k] = ref[i*n+k] / norm
					}
					for j := k + 1; j < n; j++ {
						var r float64
						for i := 0; i < n; i++ {
							r += float64(q[i*n+k]) * float64(ref[i*n+j])
						}
						for i := 0; i < n; i++ {
							ref[i*n+j] -= q[i*n+k] * float32(r)
						}
					}
				}
				return checkF32(m, qB, q, 5e-2, "grm q")
			}
			return inst, nil
		},
	})
}

// Sparse matrix–vector multiply in ELLPACK layout (Parboil spmv): the column
// index and value arrays are indexed by thread id and iteration (both
// deterministic); the gather x[col] is non-deterministic — giving spmv the
// mixed profile Figure 1 shows for it.
const spmvSrc = `
.kernel spmv
.param .u32 data
.param .u32 indices
.param .u32 x
.param .u32 y
.param .u32 nrows
.param .u32 ell
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;   // row
    ld.param.u32 %r3, [nrows];
    setp.ge.u32  %p0, %r2, %r3;
@%p0 bra EXIT;
    ld.param.u32 %r4, [ell];
    ld.param.u32 %r5, [data];
    ld.param.u32 %r6, [indices];
    ld.param.u32 %r7, [x];
    mov.f32      %r8, 0.0;                // acc
    mov.u32      %r9, 0;                  // k
LOOP:
    setp.ge.u32  %p1, %r9, %r4;
@%p1 bra STORE;
    mad.u32      %r10, %r9, %r3, %r2;     // k*nrows + row (column-major ELL)
    shl.u32      %r11, %r10, 2;
    add.u32      %r12, %r6, %r11;
    ld.global.u32 %r13, [%r12];           // col (deterministic)
    add.u32      %r14, %r5, %r11;
    ld.global.f32 %r15, [%r14];           // val (deterministic)
    shl.u32      %r16, %r13, 2;
    add.u32      %r17, %r7, %r16;
    ld.global.f32 %r18, [%r17];           // x[col] (non-deterministic)
    mad.f32      %r8, %r15, %r18, %r8;
    add.u32      %r9, %r9, 1;
    bra LOOP;
STORE:
    ld.param.u32 %r19, [y];
    shl.u32      %r20, %r2, 2;
    add.u32      %r21, %r19, %r20;
    st.global.f32 [%r21], %r8;
EXIT:
    exit;
`

func init() {
	register(&Workload{
		Name:        "spmv",
		Category:    Linear,
		Description: "sparse matrix dense vector multiply, ELLPACK layout (Parboil spmv)",
		DataSet:     "32768-row sparse matrix, 12 nnz/row, scattered columns",
		Setup: func(p Params) (*Instance, error) {
			n := p.Size
			if n == 0 {
				n = 32768
			}
			const ell = 12
			rng := rand.New(rand.NewSource(p.Seed + 5))
			m := mem.New()
			prog := ptx.MustParse(spmvSrc)
			k := prog.MustKernel("spmv")

			// Column-major ELL arrays. Column indices scatter within a band
			// around the row, like real sparse operator matrices; a warp's 32
			// gathers then touch a handful of distinct blocks, reproducing
			// the ~6 requests/warp the paper reports for spmv in Figure 2.
			const band = 192
			data := make([]float32, n*ell)
			indices := make([]uint32, n*ell)
			for row := 0; row < n; row++ {
				for kk := 0; kk < ell; kk++ {
					col := (row + rng.Intn(band) - band/2 + n) % n
					indices[kk*n+row] = uint32(col)
					data[kk*n+row] = rng.Float32()
				}
			}
			x := randF32s(rng, n, -1, 1)
			dataB := m.AllocF32s(data)
			idxB := m.AllocU32s(indices)
			xB := m.AllocF32s(x)
			yB := m.Alloc(uint32(4 * n))

			inst := &Instance{
				Mem: m, Prog: prog, MainKernel: "spmv",
				CTAs:          grid1D(n, 192),
				ThreadsPerCTA: 192,
			}
			inst.Run = func(exec Executor) error {
				return exec(launch1D(k, n, 192, dataB, idxB, xB, yB, uint32(n), ell))
			}
			inst.Verify = func() error {
				want := make([]float32, n)
				for row := 0; row < n; row++ {
					var acc float32
					for kk := 0; kk < ell; kk++ {
						acc = data[kk*n+row]*x[indices[kk*n+row]] + acc
					}
					want[row] = acc
				}
				return checkF32(m, yB, want, 1e-3, "spmv y")
			}
			return inst, nil
		},
	})
}
