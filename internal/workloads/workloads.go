// Package workloads re-implements the paper's fifteen benchmark applications
// (Table I) in the PTX-subset ISA, each with a synthetic input generator and
// a CPU reference checker. The kernels preserve the address-dataflow
// structure of the originals — linear thread/CTA indexing for the linear
// algebra apps, shared-memory tiling for the image apps, and index-array /
// CSR indirection for the graph apps — which is what the paper's load
// classification and all downstream measurements depend on.
package workloads

import (
	"fmt"
	"sort"

	"critload/internal/emu"
	"critload/internal/mem"
	"critload/internal/ptx"
)

// Category groups workloads as in Table I.
type Category int

// Workload categories. Synthetic covers resolver-backed parameterized
// kernels (internal/families) that are generated on demand rather than
// registered as fixed Table I benchmarks.
const (
	Linear Category = iota
	Image
	Graph
	Synthetic
)

func (c Category) String() string {
	switch c {
	case Linear:
		return "linear"
	case Image:
		return "image"
	case Graph:
		return "graph"
	case Synthetic:
		return "synthetic"
	}
	return "?"
}

// Params configures an instance. Size scales the main data structure with a
// workload-specific meaning (matrix dimension, image edge, vertex count);
// zero selects the workload's standard size. Seed drives input generation.
type Params struct {
	Size int
	Seed int64
}

// Executor runs one kernel launch; the functional driver and the timing GPU
// both satisfy it.
type Executor func(l *emu.Launch) error

// Instance is a ready-to-run workload instance: device memory initialized,
// host logic captured in Run, and a CPU reference check in Verify.
type Instance struct {
	Workload *Workload
	Mem      *mem.Memory
	Prog     *ptx.Program

	// MainKernel is the kernel whose geometry Table I reports.
	MainKernel string
	// CTAs and ThreadsPerCTA describe the main kernel's launch geometry.
	CTAs          int
	ThreadsPerCTA int

	// Run drives all launches (host loops included) through exec.
	Run func(exec Executor) error
	// Verify compares device results against the CPU reference.
	Verify func() error
}

// Workload is one registered benchmark.
type Workload struct {
	Name        string
	Category    Category
	Description string
	DataSet     string // description of the synthetic input at default size
	// Setup builds an instance.
	Setup func(p Params) (*Instance, error)
}

var registry = map[string]*Workload{}

// resolvers are fallback name resolvers consulted — in registration order —
// when a name is not in the static registry. The families package registers
// one at init time to make parameterized family specs (names of the form
// "family:<name>?<knobs>") first-class workloads everywhere a Table I name
// is accepted: experiments, job specs, checkpoint keys, all three engines.
// Registration must happen during package initialization; Get reads the
// slice without locking afterwards.
var resolvers []func(name string) (*Workload, bool)

// RegisterResolver installs a fallback resolver. Init-time only.
func RegisterResolver(fn func(name string) (*Workload, bool)) {
	resolvers = append(resolvers, fn)
}

func register(w *Workload) {
	if _, dup := registry[w.Name]; dup {
		panic(fmt.Sprintf("workloads: duplicate %q", w.Name))
	}
	registry[w.Name] = w
}

// Get returns a workload by name: a Table I benchmark from the static
// registry, or — for names no benchmark claims — whatever a registered
// resolver synthesizes (parameterized families).
func Get(name string) (*Workload, bool) {
	if w, ok := registry[name]; ok {
		return w, true
	}
	for _, fn := range resolvers {
		if w, ok := fn(name); ok {
			return w, true
		}
	}
	return nil, false
}

// MustGet returns a workload or panics.
func MustGet(name string) *Workload {
	w, ok := Get(name)
	if !ok {
		panic(fmt.Sprintf("workloads: unknown workload %q", name))
	}
	return w
}

// Names returns all workload names in the paper's Table I order.
func Names() []string {
	order := map[string]int{
		"2mm": 0, "gaus": 1, "grm": 2, "lu": 3, "spmv": 4,
		"htw": 5, "mriq": 6, "dwt": 7, "bpr": 8, "srad": 9,
		"bfs": 10, "sssp": 11, "ccl": 12, "mst": 13, "mis": 14,
	}
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// All returns every workload in Table I order.
func All() []*Workload {
	var out []*Workload
	for _, n := range Names() {
		out = append(out, registry[n])
	}
	return out
}

// ByCategory returns workloads of one category in Table I order.
func ByCategory(c Category) []*Workload {
	var out []*Workload
	for _, w := range All() {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}

// FunctionalExecutor returns an Executor running launches on the functional
// emulator against m, with an optional listener.
func FunctionalExecutor(m *mem.Memory, listener emu.StepListener, maxWarpInsts uint64) Executor {
	var used uint64
	return func(l *emu.Launch) error {
		budget := uint64(0)
		if maxWarpInsts > 0 {
			if used >= maxWarpInsts {
				return nil // silently skip once the window is exhausted
			}
			budget = maxWarpInsts - used
		}
		env := &emu.Env{Mem: m, Launch: l}
		res, err := emu.Run(env, emu.RunOptions{Listener: listener, MaxWarpInsts: budget})
		used += res.WarpInsts
		return err
	}
}
