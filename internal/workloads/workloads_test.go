package workloads

import (
	"fmt"
	"testing"

	"critload/internal/dataflow"
	"critload/internal/emu"
	"critload/internal/stats"
)

// smallSize gives per-workload reduced sizes for fast functional tests.
var smallSize = map[string]int{
	"2mm": 32, "gaus": 24, "grm": 24, "lu": 24, "spmv": 512,
	"htw": 64, "mriq": 64, "dwt": 64, "bpr": 256, "srad": 32,
	"bfs": 512, "sssp": 256, "ccl": 256, "mst": 128, "mis": 256,
}

// setupSmall builds a small instance of the named workload.
func setupSmall(t *testing.T, name string) *Instance {
	t.Helper()
	w, ok := Get(name)
	if !ok {
		t.Fatalf("workload %q not registered", name)
	}
	inst, err := w.Setup(Params{Size: smallSize[name], Seed: 42})
	if err != nil {
		t.Fatalf("Setup(%s): %v", name, err)
	}
	return inst
}

// TestAllWorkloadsFunctionallyCorrect runs every registered workload on the
// functional emulator and checks the device results against the CPU
// reference.
func TestAllWorkloadsFunctionallyCorrect(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			inst := setupSmall(t, name)
			exec := FunctionalExecutor(inst.Mem, nil, 0)
			if err := inst.Run(exec); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

// TestMemoryBoundSizeVariants verifies the 4x/8x inputs behind the
// long-run rows of BENCH_sim.json: the memory-bound generators must scale
// to these sizes and still pass their CPU reference checks. grm/384 (the
// 8x point, ~25s functionally) is left to cmd/bench, which verifies the
// run via engine agreement.
func TestMemoryBoundSizeVariants(t *testing.T) {
	variants := []struct {
		name string
		size int
	}{{"spmv", 256}, {"spmv", 512}, {"grm", 192}}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("%s-%d", v.name, v.size), func(t *testing.T) {
			if testing.Short() && v.name == "grm" {
				t.Skip("multi-second functional run")
			}
			t.Parallel()
			w, ok := Get(v.name)
			if !ok {
				t.Fatalf("workload %q not registered", v.name)
			}
			inst, err := w.Setup(Params{Size: v.size, Seed: 1})
			if err != nil {
				t.Fatalf("Setup(%s, %d): %v", v.name, v.size, err)
			}
			exec := FunctionalExecutor(inst.Mem, nil, 0)
			if err := inst.Run(exec); err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := inst.Verify(); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

// TestWorkloadMetadata checks the registry matches Table I's structure.
func TestWorkloadMetadata(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("registered workloads = %d, want 15", len(names))
	}
	want := []string{"2mm", "gaus", "grm", "lu", "spmv", "htw", "mriq", "dwt", "bpr", "srad", "bfs", "sssp", "ccl", "mst", "mis"}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("Names()[%d] = %q, want %q", i, names[i], n)
		}
	}
	if got := len(ByCategory(Linear)); got != 5 {
		t.Errorf("linear workloads = %d, want 5", got)
	}
	if got := len(ByCategory(Image)); got != 5 {
		t.Errorf("image workloads = %d, want 5", got)
	}
	if got := len(ByCategory(Graph)); got != 5 {
		t.Errorf("graph workloads = %d, want 5", got)
	}
	for _, w := range All() {
		if w.Description == "" || w.DataSet == "" {
			t.Errorf("%s: missing metadata", w.Name)
		}
	}
}

// TestWorkloadInstancesExposeGeometry checks the Table I geometry fields.
func TestWorkloadInstancesExposeGeometry(t *testing.T) {
	for _, name := range Names() {
		inst := setupSmall(t, name)
		if inst.CTAs <= 0 || inst.ThreadsPerCTA <= 0 {
			t.Errorf("%s: geometry %d CTAs × %d threads", name, inst.CTAs, inst.ThreadsPerCTA)
		}
		if inst.MainKernel == "" {
			t.Errorf("%s: no main kernel", name)
		}
		if _, ok := inst.Prog.Kernel(inst.MainKernel); !ok {
			t.Errorf("%s: main kernel %q not in program", name, inst.MainKernel)
		}
	}
}

// classifierFor builds a per-kernel map of stats classifiers.
func classifierFor(inst *Instance) map[string]stats.Classifier {
	out := map[string]stats.Classifier{}
	for _, k := range inst.Prog.Kernels {
		res := dataflow.Classify(k)
		out[k.Name] = func(pc uint32) bool {
			li, ok := res.Load(int(pc) / 8)
			return ok && li.Class == dataflow.NonDeterministic
		}
	}
	return out
}

// TestCategoriesShowExpectedLoadMix checks the paper's Figure 1 shape: the
// graph workloads execute non-deterministic loads, the dense linear algebra
// ones do not.
func TestCategoriesShowExpectedLoadMix(t *testing.T) {
	nondetFraction := func(name string) float64 {
		inst := setupSmall(t, name)
		col := stats.New()
		classifiers := classifierFor(inst)
		var current stats.Classifier
		listener := func(ctaID int, w *emu.Warp, s *emu.Step) {
			col.ObserveStep(ctaID, s, current)
		}
		exec := func(l *emu.Launch) error {
			current = classifiers[l.Kernel.Name]
			e := FunctionalExecutor(inst.Mem, listener, 0)
			return e(l)
		}
		if err := inst.Run(exec); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, nd := col.LoadFraction()
		return nd
	}

	for _, name := range []string{"2mm", "gaus", "lu", "grm"} {
		if f := nondetFraction(name); f != 0 {
			t.Errorf("%s: non-deterministic fraction %v, want 0", name, f)
		}
	}
	for _, name := range []string{"bfs", "sssp", "mis", "ccl", "mst", "spmv"} {
		if f := nondetFraction(name); f <= 0.05 {
			t.Errorf("%s: non-deterministic fraction %v, want > 0.05", name, f)
		}
	}
}
