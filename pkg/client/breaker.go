package client

import (
	"errors"
	"sync"
	"time"
)

// ErrCircuitOpen is returned without touching the network while the breaker
// is open: recent attempts kept failing, and the cooloff has not elapsed.
var ErrCircuitOpen = errors.New("client: circuit breaker open")

// BreakerConfig tunes the client's circuit breaker. The breaker watches
// server-fault outcomes only (transport errors, 429, 5xx); caller errors
// like a 422 parse rejection never trip it.
type BreakerConfig struct {
	// Disabled turns the breaker off entirely.
	Disabled bool
	// FailureThreshold is how many consecutive server faults open the
	// circuit (0 = 5).
	FailureThreshold int
	// Cooloff is how long the circuit stays open before a half-open probe
	// is allowed through (0 = 2s).
	Cooloff time.Duration
}

// Breaker defaults.
const (
	DefaultFailureThreshold = 5
	DefaultCooloff          = 2 * time.Second
)

// breaker is a consecutive-failure circuit breaker with the classic three
// states. Closed: requests flow, failures count. Open: requests are shed
// with ErrCircuitOpen until the cooloff elapses. Half-open: exactly one
// probe request is allowed through; its success closes the circuit, its
// failure re-opens it for another cooloff.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injected in tests

	mu        sync.Mutex
	failures  int
	openUntil time.Time
	opened    bool // distinguishes open/half-open from closed
	probing   bool // a half-open probe is in flight
}

func newBreaker(cfg BreakerConfig) *breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = DefaultFailureThreshold
	}
	if cfg.Cooloff <= 0 {
		cfg.Cooloff = DefaultCooloff
	}
	return &breaker{cfg: cfg, now: time.Now}
}

// allow reports whether a request may proceed, transitioning open →
// half-open once the cooloff has elapsed.
func (b *breaker) allow() error {
	if b.cfg.Disabled {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.opened {
		return nil
	}
	if b.now().Before(b.openUntil) {
		return ErrCircuitOpen
	}
	// Half-open: one probe at a time; everyone else keeps getting shed
	// until the probe reports back.
	if b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// record feeds one attempt's outcome back. success means "the server is
// healthy" — a 4xx caller error counts as success here.
func (b *breaker) record(success bool) {
	if b.cfg.Disabled {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		b.failures = 0
		b.opened = false
		b.probing = false
		return
	}
	b.probing = false
	b.failures++
	if b.opened || b.failures >= b.cfg.FailureThreshold {
		b.opened = true
		b.openUntil = b.now().Add(b.cfg.Cooloff)
	}
}

// state names the current state for observability: "closed", "open" or
// "half-open" (plus "disabled").
func (b *breaker) state() string {
	if b.cfg.Disabled {
		return "disabled"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.opened:
		return "closed"
	case b.now().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
