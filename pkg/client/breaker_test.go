package client

import (
	"errors"
	"net/http"
	"testing"
	"time"
)

// fakeClock drives the breaker's notion of time.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestBreaker(threshold int, cooloff time.Duration) (*breaker, *fakeClock) {
	b := newBreaker(BreakerConfig{FailureThreshold: threshold, Cooloff: cooloff})
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.allow(); err != nil {
			t.Fatalf("allow %d = %v, want nil while closed", i, err)
		}
		b.record(false)
	}
	if got := b.state(); got != "closed" {
		t.Fatalf("state after 2 failures = %q, want closed", got)
	}
	b.record(false) // third consecutive failure trips it
	if got := b.state(); got != "open" {
		t.Fatalf("state after threshold = %q, want open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow while open = %v, want ErrCircuitOpen", err)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.record(false)
	b.record(false)
	b.record(true) // run broken: counting starts over
	b.record(false)
	b.record(false)
	if got := b.state(); got != "closed" {
		t.Fatalf("state = %q, want closed (failures are not cumulative)", got)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.record(false)
	if got := b.state(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	clk.advance(1100 * time.Millisecond)
	if got := b.state(); got != "half-open" {
		t.Fatalf("state after cooloff = %q, want half-open", got)
	}
	// Exactly one probe goes through; concurrent callers are still shed.
	if err := b.allow(); err != nil {
		t.Fatalf("probe allow = %v, want nil", err)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second caller during probe = %v, want ErrCircuitOpen", err)
	}
	// Probe succeeds: circuit closes, traffic flows.
	b.record(true)
	if got := b.state(); got != "closed" {
		t.Fatalf("state after successful probe = %q, want closed", got)
	}
	if err := b.allow(); err != nil {
		t.Fatalf("allow after close = %v, want nil", err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.record(false)
	clk.advance(1100 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("probe allow = %v, want nil", err)
	}
	b.record(false) // probe failed: back to open for a fresh cooloff
	if got := b.state(); got != "open" {
		t.Fatalf("state after failed probe = %q, want open", got)
	}
	if err := b.allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("allow after failed probe = %v, want ErrCircuitOpen", err)
	}
	// And the next cooloff admits another probe.
	clk.advance(1100 * time.Millisecond)
	if err := b.allow(); err != nil {
		t.Fatalf("second probe allow = %v, want nil", err)
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(BreakerConfig{Disabled: true})
	for i := 0; i < 100; i++ {
		b.record(false)
	}
	if err := b.allow(); err != nil {
		t.Fatalf("disabled breaker allow = %v, want nil", err)
	}
	if got := b.state(); got != "disabled" {
		t.Fatalf("state = %q, want disabled", got)
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	j := newJitterSource()
	base, max := 50*time.Millisecond, 2*time.Second
	for attempt := 0; attempt < 10; attempt++ {
		full := base << attempt
		if full > max || full <= 0 {
			full = max
		}
		for i := 0; i < 50; i++ {
			d := backoffDelay(base, max, attempt, j)
			if d < full/2 || d > full {
				t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, full/2, full)
			}
		}
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty = %v, want 0", d)
	}
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("seconds = %v, want 2s", d)
	}
	if d := parseRetryAfter("-1"); d != 0 {
		t.Errorf("negative = %v, want 0", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage = %v, want 0", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 90*time.Second {
		t.Errorf("http-date = %v, want ~90s", d)
	}
	past := time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date = %v, want 0", d)
	}
}
