package client

import (
	"context"
	"net/http"

	"critload/internal/jobs"
)

// Root is one primitive contributor to a load address (a kernel parameter,
// a special register, ...).
type Root struct {
	Kind string `json:"kind"`
	Name string `json:"name,omitempty"`
}

// Load is the classification of one global load instruction.
type Load struct {
	PC    string `json:"pc"`
	Inst  string `json:"inst"`
	Class string `json:"class"`
	Roots []Root `json:"roots"`
}

// Kernel is one kernel's classification result.
type Kernel struct {
	Name             string `json:"name"`
	Deterministic    int    `json:"deterministic"`
	NonDeterministic int    `json:"non_deterministic"`
	Loads            []Load `json:"loads"`
}

// ClassifyResult is a full program classification.
type ClassifyResult struct {
	Kernels []Kernel `json:"kernels"`
}

// Classify classifies every global load in one PTX-subset source.
func (c *Client) Classify(ctx context.Context, ptxSource string) (*ClassifyResult, error) {
	var out ClassifyResult
	err := c.do(ctx, "classify", http.MethodPost, "/v1/classify", nil,
		struct {
			PTX string `json:"ptx"`
		}{ptxSource}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// ClassifyFamily classifies a parameterized family instance: the daemon
// lowers the spec to its kernel and classifies every global load. Spec
// problems (unknown family, out-of-range knob) surface as 400 APIErrors.
func (c *Client) ClassifyFamily(ctx context.Context, spec FamilySpec) (*ClassifyResult, error) {
	var out ClassifyResult
	err := c.do(ctx, "classify_family", http.MethodPost, "/v1/classify", nil,
		struct {
			Family FamilySpec `json:"family"`
		}{spec}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchItem is one kernel source in a batch classify request. ID is an
// optional correlation handle; results come back in request order either
// way. Non-empty IDs must be unique within the batch.
type BatchItem struct {
	ID  string `json:"id,omitempty"`
	PTX string `json:"ptx"`
}

// BatchItemResult is one item's outcome: Status mirrors what the single
// classify endpoint would have answered for the same source, so a bad
// kernel fails its slot without failing the batch.
type BatchItemResult struct {
	ID     string          `json:"id,omitempty"`
	Status int             `json:"status"`
	Error  string          `json:"error,omitempty"`
	Result *ClassifyResult `json:"result,omitempty"`
}

// OK reports whether this item classified successfully.
func (r BatchItemResult) OK() bool { return r.Status == http.StatusOK }

// BatchResult is a full batch outcome, items in request order.
type BatchResult struct {
	Items     []BatchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// ClassifyBatch classifies many sources in one request, amortizing HTTP
// overhead on the classify hot path. The batch is validated client-side
// against the same bounds the server enforces (at most jobs.MaxBatchItems
// items, unique non-empty IDs) so an invalid batch never costs a round
// trip.
func (c *Client) ClassifyBatch(ctx context.Context, items []BatchItem) (*BatchResult, error) {
	if err := jobs.ValidateBatchSize(len(items)); err != nil {
		return nil, err
	}
	ids := make([]string, len(items))
	for i, it := range items {
		ids[i] = it.ID
	}
	if err := jobs.ValidateBatchIDs(ids); err != nil {
		return nil, err
	}
	var out BatchResult
	err := c.do(ctx, "classify_batch", http.MethodPost, "/v1/classify/batch", nil,
		struct {
			Items []BatchItem `json:"items"`
		}{items}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
