// Package client is the native Go client for critloadd, the
// classification-and-simulation service.
//
// It is built for sustained high-QPS use: the default transport keeps a
// deep pool of keep-alive connections to the daemon, every operation
// retries transient failures (transport errors, 429, 5xx) with exponential
// backoff and jitter — honouring the server's Retry-After push-back — and a
// circuit breaker sheds load fast when the daemon is down instead of
// queueing doomed requests behind dial timeouts. Per-operation counters and
// latency histograms are available from Stats at any time.
//
// Typical use:
//
//	c, err := client.New(client.Config{BaseURL: "http://localhost:8321"})
//	res, err := c.Classify(ctx, ptxSource)
//	job, err := c.RunJob(ctx, client.JobSpec{Workload: "2mm", Mode: "timing", Size: 32})
//
// The batch endpoint amortizes HTTP overhead on the classify hot path:
//
//	out, err := c.ClassifyBatch(ctx, []client.BatchItem{{ID: "k1", PTX: src1}, ...})
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Default tuning. Overridable per field in Config; zero values select these.
const (
	DefaultMaxRetries     = 3
	DefaultRetryBaseDelay = 50 * time.Millisecond
	DefaultRetryMaxDelay  = 2 * time.Second
)

// maxResponseBytes bounds how much of a response body the client will read;
// critloadd responses are JSON snapshots, never bulk data.
const maxResponseBytes = 32 << 20

// Config configures a Client. Only BaseURL is required.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://localhost:8321".
	BaseURL string
	// HTTPClient overrides the default pooled client. Leave its Timeout
	// zero — long job polls hold responses open; use contexts instead.
	HTTPClient *http.Client
	// UserAgent overrides the default User-Agent header.
	UserAgent string
	// MaxRetries is how many times one operation is re-attempted after a
	// retryable failure (0 = DefaultMaxRetries, negative = no retries).
	MaxRetries int
	// RetryBaseDelay seeds the exponential backoff (0 = default). Attempt n
	// backs off around base<<n, jittered, capped at RetryMaxDelay — unless
	// the server's Retry-After asks for longer.
	RetryBaseDelay time.Duration
	// RetryMaxDelay caps the backoff (0 = default).
	RetryMaxDelay time.Duration
	// Breaker tunes the circuit breaker; see BreakerConfig.
	Breaker BreakerConfig
}

// Client is a critloadd API client. It is safe for concurrent use; one
// Client should be shared across all goroutines talking to one daemon so
// they share its connection pool, breaker and stats.
type Client struct {
	base    *url.URL
	httpc   *http.Client
	ua      string
	retries int
	baseDel time.Duration
	maxDel  time.Duration
	breaker *breaker
	stats   *statsSet
	jitter  *jitterSource
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: config has no BaseURL")
	}
	base, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing BaseURL: %w", err)
	}
	if base.Scheme != "http" && base.Scheme != "https" {
		return nil, fmt.Errorf("client: BaseURL scheme %q is not http(s)", base.Scheme)
	}
	c := &Client{
		base:    base,
		httpc:   cfg.HTTPClient,
		ua:      cfg.UserAgent,
		retries: cfg.MaxRetries,
		baseDel: cfg.RetryBaseDelay,
		maxDel:  cfg.RetryMaxDelay,
		breaker: newBreaker(cfg.Breaker),
		stats:   newStatsSet(),
		jitter:  newJitterSource(),
	}
	if c.httpc == nil {
		c.httpc = &http.Client{Transport: defaultTransport()}
	}
	if c.ua == "" {
		c.ua = "critload-client/1"
	}
	switch {
	case c.retries == 0:
		c.retries = DefaultMaxRetries
	case c.retries < 0:
		c.retries = 0
	}
	if c.baseDel <= 0 {
		c.baseDel = DefaultRetryBaseDelay
	}
	if c.maxDel <= 0 {
		c.maxDel = DefaultRetryMaxDelay
	}
	return c, nil
}

// defaultTransport is tuned for many concurrent workers hammering one
// daemon: connection reuse is the whole point of a native client, so the
// per-host idle pool is deep enough that a soak's worth of workers never
// churn through fresh dials.
func defaultTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          512,
		MaxIdleConnsPerHost:   512,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   5 * time.Second,
		ExpectContinueTimeout: time.Second,
	}
}

// Close releases the client's idle connections. The Client must not be used
// afterwards.
func (c *Client) Close() {
	c.httpc.CloseIdleConnections()
}

// Stats snapshots the per-operation counters and latency distributions
// accumulated since the client was built.
func (c *Client) Stats() StatsSnapshot { return c.stats.snapshot() }

// BreakerState reports the circuit breaker's current state — "closed",
// "open" or "half-open" — for dashboards and tests.
func (c *Client) BreakerState() string { return c.breaker.state() }

// APIError is a non-2xx response from the daemon.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Message is the server's error string.
	Message string
	// RetryAfter is the server's Retry-After push-back, when present.
	RetryAfter time.Duration
	// Diagnostics carries per-line validation failures on 422 responses
	// from /v1/ptx; empty otherwise.
	Diagnostics []Diagnostic
}

func (e *APIError) Error() string {
	return fmt.Sprintf("critloadd: %s (HTTP %d)", e.Message, e.Status)
}

// IsRetryable reports whether the error signals a transient server
// condition (429 push-back or a 5xx fault) rather than a caller mistake.
func (e *APIError) IsRetryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs one logical operation with retries, breaker accounting and stats.
// body (when non-nil) is marshalled once and replayed on every attempt; a
// 2xx response is decoded into out (when non-nil).
func (c *Client) do(ctx context.Context, op, method, path string, query url.Values, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	start := time.Now()
	err := c.doAttempts(ctx, op, method, path, query, payload, out)
	c.stats.observe(op, time.Since(start), err)
	return err
}

func (c *Client) doAttempts(ctx context.Context, op, method, path string, query url.Values, payload []byte, out any) error {
	u := c.base.JoinPath(path)
	if query != nil {
		u.RawQuery = query.Encode()
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breaker.allow(); err != nil {
			// Shed immediately: the breaker is open because recent attempts
			// kept failing; burning the retry budget against it helps no one.
			return err
		}
		lastErr = c.attempt(ctx, method, u, payload, out)
		if lastErr == nil {
			return nil
		}
		retryable, retryAfter := retryDisposition(lastErr)
		if !retryable || attempt >= c.retries {
			return lastErr
		}
		delay := backoffDelay(c.baseDel, c.maxDel, attempt, c.jitter)
		if retryAfter > delay {
			delay = retryAfter
		}
		c.stats.retry(op)
		if err := sleepCtx(ctx, delay); err != nil {
			return lastErr
		}
	}
}

// attempt is one HTTP round trip: build, send, classify, decode. It reports
// the outcome to the breaker — transport errors and server faults (429/5xx)
// count against it, caller errors (4xx) do not.
func (c *Client) attempt(ctx context.Context, method string, u *url.URL, payload []byte, out any) error {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json")
	req.Header.Set("User-Agent", c.ua)

	resp, err := c.httpc.Do(req)
	if err != nil {
		c.breaker.record(false)
		return &transportError{err: err}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		c.breaker.record(false)
		return &transportError{err: fmt.Errorf("reading response: %w", err)}
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		c.breaker.record(true)
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
		return nil
	}
	apiErr := &APIError{
		Status:     resp.StatusCode,
		Message:    errorMessage(raw, resp.StatusCode),
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	var diag struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
	}
	if json.Unmarshal(raw, &diag) == nil {
		apiErr.Diagnostics = diag.Diagnostics
	}
	c.breaker.record(!apiErr.IsRetryable())
	return apiErr
}

// transportError wraps a failed round trip (dial, reset, timeout); always
// retryable. Unwrap exposes the cause so errors.Is(err, context.Canceled)
// and friends keep working through it.
type transportError struct{ err error }

func (e *transportError) Error() string { return "client: " + e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// retryDisposition classifies one attempt's failure: whether another
// attempt may help, and how long the server asked us to hold off.
func retryDisposition(err error) (retryable bool, retryAfter time.Duration) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.IsRetryable(), apiErr.RetryAfter
	}
	var tErr *transportError
	if errors.As(err, &tErr) {
		// A round trip cut short by the caller's own context is not a server
		// fault; retrying against a dead context just burns the backoff.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return false, 0
		}
		return true, 0
	}
	return false, 0
}

// errorMessage extracts the server's {"error": "..."} payload, falling back
// to the status text for non-JSON bodies (proxies, panics mid-write).
func errorMessage(raw []byte, status int) string {
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &e); err == nil && e.Error != "" {
		return e.Error
	}
	if msg := strings.TrimSpace(string(raw)); msg != "" && len(msg) <= 200 {
		return msg
	}
	return http.StatusText(status)
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
