package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
	"critload/pkg/client"
)

const kernelSrc = `
.kernel lin
.param .u32 a
    mov.u32      %r0, %ctaid.x;
    mov.u32      %r1, %ntid.x;
    mad.u32      %r2, %r0, %r1, %tid.x;
    ld.param.u32 %r3, [a];
    shl.u32      %r4, %r2, 2;
    add.u32      %r5, %r3, %r4;
    ld.global.u32 %r6, [%r5];
    exit;
`

// newClient builds a client with fast retries against url; extra Config
// fields can be layered by the caller afterwards via the returned Config.
func newClient(t *testing.T, url string, cfg client.Config) *client.Client {
	t.Helper()
	cfg.BaseURL = url
	if cfg.RetryBaseDelay == 0 {
		cfg.RetryBaseDelay = time.Millisecond
	}
	if cfg.RetryMaxDelay == 0 {
		cfg.RetryMaxDelay = 5 * time.Millisecond
	}
	c, err := client.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

// newDaemon stands up the real critloadd API over httptest.
func newDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	mgr, err := jobs.NewManager(jobs.Config{Workers: 2, Runner: server.SimRunner()})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		mgr.Close(ctx)
	})
	return ts
}

func TestClassifyAgainstRealServer(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	res, err := c.Classify(context.Background(), kernelSrc)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if len(res.Kernels) != 1 || res.Kernels[0].Name != "lin" || res.Kernels[0].Deterministic != 1 {
		t.Fatalf("result = %+v", res.Kernels)
	}
	st := c.Stats()["classify"]
	if st.Count != 1 || st.Errors != 0 || st.Retries != 0 {
		t.Fatalf("stats = %+v, want one clean op", st)
	}
	if st.MaxMillis <= 0 || st.P50Millis <= 0 {
		t.Fatalf("latency stats empty: %+v", st)
	}
}

// TestRetryOn429And503 injects transient push-back: the first failures of
// each kind must be retried through to success, counted as retries.
func TestRetryOn429And503(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		t.Run(fmt.Sprint(status), func(t *testing.T) {
			var calls atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if calls.Add(1) <= 2 {
					w.Header().Set("Retry-After", "0")
					w.WriteHeader(status)
					fmt.Fprint(w, `{"error":"busy"}`)
					return
				}
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprint(w, `{"kernels":[]}`)
			}))
			defer ts.Close()
			c := newClient(t, ts.URL, client.Config{})
			if _, err := c.Classify(context.Background(), kernelSrc); err != nil {
				t.Fatalf("Classify after transient %d: %v", status, err)
			}
			if got := calls.Load(); got != 3 {
				t.Fatalf("server saw %d calls, want 3", got)
			}
			if st := c.Stats()["classify"]; st.Retries != 2 || st.Errors != 0 {
				t.Fatalf("stats = %+v, want 2 retries, 0 errors", st)
			}
		})
	}
}

// TestRetryHonorsRetryAfter checks the server's push-back stretches the
// backoff: with a 1-second Retry-After, a retry cannot land sooner.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	var firstTwo [2]time.Time
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			firstTwo[n-1] = time.Now()
		}
		if n == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		fmt.Fprint(w, `{"kernels":[]}`)
	}))
	defer ts.Close()
	// Client backoff alone would retry within ~10ms; Retry-After must win.
	c := newClient(t, ts.URL, client.Config{})
	if _, err := c.Classify(context.Background(), kernelSrc); err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if gap := firstTwo[1].Sub(firstTwo[0]); gap < 900*time.Millisecond {
		t.Fatalf("retry landed after %v, want >= ~1s (Retry-After honored)", gap)
	}
}

// TestPermanentErrorNoRetry: a 422 is the caller's bug; retrying cannot
// help and must not happen.
func TestPermanentErrorNoRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		fmt.Fprint(w, `{"error":"parsing PTX: junk"}`)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, client.Config{})
	_, err := c.Classify(context.Background(), "junk ;")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want APIError 422", err)
	}
	if apiErr.IsRetryable() {
		t.Error("422 reported retryable")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want exactly 1 (no retries)", got)
	}
	if st := c.Stats()["classify"]; st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 error", st)
	}
}

// TestTimeoutPropagates: a server that outlives the caller's deadline
// yields a context error, not a retry storm.
func TestTimeoutPropagates(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Classify(ctx, kernelSrc)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("took %v, want prompt return at the deadline", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (no retry past a dead context)", got)
	}
}

// TestBreakerShedsAfterConsecutiveFailures: a hard-down server opens the
// circuit, after which calls fail fast without touching the network.
func TestBreakerShedsAfterConsecutiveFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"boom"}`)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, client.Config{
		MaxRetries: -1, // isolate the breaker from the retry loop
		Breaker:    client.BreakerConfig{FailureThreshold: 3, Cooloff: time.Minute},
	})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Classify(ctx, kernelSrc); err == nil {
			t.Fatalf("call %d unexpectedly succeeded", i)
		}
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	seen := calls.Load()
	_, err := c.Classify(ctx, kernelSrc)
	if !errors.Is(err, client.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if calls.Load() != seen {
		t.Fatal("open circuit still reached the server")
	}
}

// TestBreakerHalfOpenRecovery: once the server heals and the cooloff
// passes, a probe closes the circuit and traffic resumes.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"boom"}`)
			return
		}
		fmt.Fprint(w, `{"kernels":[]}`)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, client.Config{
		MaxRetries: -1,
		Breaker:    client.BreakerConfig{FailureThreshold: 2, Cooloff: 30 * time.Millisecond},
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		c.Classify(ctx, kernelSrc)
	}
	if got := c.BreakerState(); got != "open" {
		t.Fatalf("breaker state = %q, want open", got)
	}
	healthy.Store(true)
	time.Sleep(50 * time.Millisecond) // past the cooloff: next call is the probe
	if _, err := c.Classify(ctx, kernelSrc); err != nil {
		t.Fatalf("probe call: %v", err)
	}
	if got := c.BreakerState(); got != "closed" {
		t.Fatalf("breaker state after probe = %q, want closed", got)
	}
}

// TestClassifyBatchPartialFailure drives batch semantics end to end
// against the real server: bad items fail their slots, good ones succeed.
func TestClassifyBatchPartialFailure(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	out, err := c.ClassifyBatch(context.Background(), []client.BatchItem{
		{ID: "good", PTX: kernelSrc},
		{ID: "junk", PTX: "junk ;"},
		{ID: "also-good", PTX: kernelSrc},
	})
	if err != nil {
		t.Fatalf("ClassifyBatch: %v", err)
	}
	if out.Succeeded != 2 || out.Failed != 1 || len(out.Items) != 3 {
		t.Fatalf("batch outcome = %+v", out)
	}
	if !out.Items[0].OK() || out.Items[1].OK() || !out.Items[2].OK() {
		t.Fatalf("per-item OK = %v %v %v, want true false true",
			out.Items[0].OK(), out.Items[1].OK(), out.Items[2].OK())
	}
	if out.Items[1].Status != http.StatusUnprocessableEntity || out.Items[1].Error == "" {
		t.Fatalf("junk item = %+v, want 422 with error", out.Items[1])
	}
	if out.Items[0].Result == nil || out.Items[0].Result.Kernels[0].Deterministic != 1 {
		t.Fatalf("good item result = %+v", out.Items[0].Result)
	}
}

// TestClassifyBatchClientSideValidation: an invalid batch never crosses
// the wire.
func TestClassifyBatchClientSideValidation(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
	}))
	defer ts.Close()
	c := newClient(t, ts.URL, client.Config{})
	ctx := context.Background()
	if _, err := c.ClassifyBatch(ctx, nil); !errors.Is(err, jobs.ErrBatchEmpty) {
		t.Errorf("empty batch err = %v, want ErrBatchEmpty", err)
	}
	big := make([]client.BatchItem, jobs.MaxBatchItems+1)
	for i := range big {
		big[i].PTX = kernelSrc
	}
	if _, err := c.ClassifyBatch(ctx, big); !errors.Is(err, jobs.ErrBatchTooLarge) {
		t.Errorf("oversized batch err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := c.ClassifyBatch(ctx, []client.BatchItem{
		{ID: "x", PTX: kernelSrc}, {ID: "x", PTX: kernelSrc},
	}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("server saw %d calls, want 0", got)
	}
}

// TestJobLifecycle runs submit → wait → result decode → cache hit →
// cancel-after-done against the real daemon.
func TestJobLifecycle(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := client.JobSpec{Workload: "2mm", Mode: "functional", Size: 32, Seed: 1}
	job, err := c.RunJob(ctx, spec)
	if err != nil {
		t.Fatalf("RunJob: %v", err)
	}
	if job.State != client.StateDone || job.Err() != nil {
		t.Fatalf("job = %+v, want done", job)
	}
	var result struct {
		Workload string `json:"workload"`
	}
	if err := json.Unmarshal(job.Result, &result); err != nil || result.Workload != "2mm" {
		t.Fatalf("result decode = %v / %+v", err, result)
	}

	// Same spec again: served from the result cache, terminal on submit.
	again, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !again.CacheHit || again.State != client.StateDone {
		t.Fatalf("resubmit = %+v, want immediate cached done", again)
	}

	got, err := c.GetJob(ctx, job.ID)
	if err != nil || got.State != client.StateDone {
		t.Fatalf("GetJob = %+v / %v", got, err)
	}
	cancelled, err := c.CancelJob(ctx, job.ID)
	if err != nil || cancelled.State != client.StateDone {
		t.Fatalf("cancel finished job = %+v / %v, want done no-op", cancelled, err)
	}

	catalog, err := c.Workloads(ctx)
	if err != nil || len(catalog.Workloads) != 15 {
		t.Fatalf("Workloads = %+v / %v, want the paper's 15", catalog, err)
	}
	if len(catalog.Families) == 0 {
		t.Fatal("catalog lists no families")
	}
	for _, f := range catalog.Families {
		if len(f.Knobs) == 0 || f.Example == "" {
			t.Fatalf("family %s listed without knob schema or example", f.Name)
		}
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}
}

// TestFamilyAndPTXSurface drives the family-spec and raw-PTX paths against
// the real daemon: classify, run a family job, submit valid and malformed
// PTX, and check the 422 diagnostics survive the trip into APIError.
func TestFamilyAndPTXSurface(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	spec := client.FamilySpec{Name: "stream", Knobs: map[string]int{
		"loads": 3, "size": 128, "ctas": 2, "block": 32,
	}}
	res, err := c.ClassifyFamily(ctx, spec)
	if err != nil || len(res.Kernels) != 1 {
		t.Fatalf("ClassifyFamily = %+v / %v", res, err)
	}
	if k := res.Kernels[0]; k.Deterministic != 3 || k.NonDeterministic != 0 {
		t.Fatalf("stream loads=3 classified %d/%d, want 3 D / 0 N",
			k.Deterministic, k.NonDeterministic)
	}

	_, err = c.ClassifyFamily(ctx, client.FamilySpec{Name: "no-such-family"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown family err = %v, want APIError 400", err)
	}

	job, err := c.RunJob(ctx, client.JobSpec{Family: &spec, Mode: "functional"})
	if err != nil || job.State != client.StateDone {
		t.Fatalf("family RunJob = %+v / %v, want done", job, err)
	}

	ptxRes, err := c.SubmitPTX(ctx, kernelSrc)
	if err != nil || len(ptxRes.Kernels) != 1 || len(ptxRes.SHA256) != 64 {
		t.Fatalf("SubmitPTX = %+v / %v", ptxRes, err)
	}
	if k := ptxRes.Kernels[0]; k.Name != "lin" || k.Deterministic != 1 {
		t.Fatalf("PTX kernel = %+v, want lin with 1 D load", k)
	}

	_, err = c.SubmitPTX(ctx, ".kernel bad\n    mov.u32 %r0, %r1, %r2;\n")
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusUnprocessableEntity {
		t.Fatalf("malformed PTX err = %v, want APIError 422", err)
	}
	if len(apiErr.Diagnostics) == 0 || apiErr.Diagnostics[0].Line != 2 {
		t.Fatalf("diagnostics = %+v, want line-2 failure", apiErr.Diagnostics)
	}
}

// TestJobNotFound maps a 404 to a typed APIError.
func TestJobNotFound(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	_, err := c.GetJob(context.Background(), "j-missing")
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want APIError 404", err)
	}
}

// TestConcurrentWorkers hammers one shared client from many goroutines —
// the -race CI job turns this into a data-race check over the client's
// pool, breaker and stats paths.
func TestConcurrentWorkers(t *testing.T) {
	ts := newDaemon(t)
	c := newClient(t, ts.URL, client.Config{})
	const workers, opsPerWorker = 8, 25
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < opsPerWorker; i++ {
				switch i % 3 {
				case 0, 1:
					if _, err := c.Classify(ctx, kernelSrc); err != nil {
						errCh <- err
						return
					}
				case 2:
					if _, err := c.ClassifyBatch(ctx, []client.BatchItem{
						{PTX: kernelSrc}, {PTX: kernelSrc},
					}); err != nil {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("worker error: %v", err)
	}
	st := c.Stats()
	var wantSingle, wantBatch int64
	for i := 0; i < opsPerWorker; i++ {
		if i%3 == 2 {
			wantBatch += workers
		} else {
			wantSingle += workers
		}
	}
	if st["classify"].Count != wantSingle || st["classify"].Errors != 0 {
		t.Fatalf("classify stats = %+v, want %d clean ops", st["classify"], wantSingle)
	}
	if st["classify_batch"].Count != wantBatch || st["classify_batch"].Errors != 0 {
		t.Fatalf("batch stats = %+v, want %d clean ops", st["classify_batch"], wantBatch)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := client.New(client.Config{}); err == nil {
		t.Error("empty BaseURL accepted")
	}
	if _, err := client.New(client.Config{BaseURL: "ftp://x"}); err == nil {
		t.Error("non-http scheme accepted")
	}
	if _, err := client.New(client.Config{BaseURL: "http://localhost:1"}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}
