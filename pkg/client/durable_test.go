package client_test

import (
	"bytes"
	"context"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"critload/internal/jobs"
	"critload/internal/server"
	"critload/pkg/client"
)

// newDurableDaemon is newDaemon with the durable job tier (journal +
// result store) rooted at dir. The returned shutdown is idempotent so
// restart tests can stop the first incarnation explicitly.
func newDurableDaemon(t *testing.T, dir string) (*httptest.Server, func()) {
	t.Helper()
	results, err := jobs.OpenResultStore(filepath.Join(dir, "results"), 0)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	mgr, err := jobs.NewManager(jobs.Config{
		Workers:    2,
		Runner:     server.SimRunner(),
		JournalDir: filepath.Join(dir, "journal"),
		Results:    results,
	})
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	ts := httptest.NewServer(server.New(mgr))
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			mgr.Close(ctx)
		})
	}
	t.Cleanup(shutdown)
	return ts, shutdown
}

// TestHealthStatusRecovery drives the client's health API against both
// daemon tiers: no recovery block without a data dir, a populated one —
// including the Recovered job flag on snapshots — across a restart.
func TestHealthStatusRecovery(t *testing.T) {
	ctx := context.Background()

	plain := newDaemon(t)
	pc := newClient(t, plain.URL, client.Config{})
	hs, err := pc.HealthStatus(ctx)
	if err != nil {
		t.Fatalf("HealthStatus: %v", err)
	}
	if hs.Status != "ok" || hs.Recovery != nil {
		t.Fatalf("plain daemon health = %+v, want ok with no recovery block", hs)
	}

	dir := t.TempDir()
	ts1, shutdown := newDurableDaemon(t, dir)
	c1 := newClient(t, ts1.URL, client.Config{})
	job, err := c1.SubmitJob(ctx, client.JobSpec{Workload: "sssp", Mode: "functional", Size: 256, Seed: 4})
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	done, err := c1.WaitJob(ctx, job.ID, 0)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if done.Recovered {
		t.Fatalf("freshly run job flagged recovered: %+v", done)
	}
	shutdown()

	ts2, _ := newDurableDaemon(t, dir)
	c2 := newClient(t, ts2.URL, client.Config{})
	hs, err = c2.HealthStatus(ctx)
	if err != nil {
		t.Fatalf("HealthStatus after restart: %v", err)
	}
	if hs.Recovery == nil || !hs.Recovery.Enabled {
		t.Fatalf("durable daemon health missing recovery block: %+v", hs)
	}
	if hs.Recovery.Jobs != 1 || hs.Recovery.Unrecoverable != 0 {
		t.Fatalf("recovery block = %+v, want 1 job, 0 unrecoverable", *hs.Recovery)
	}
	replayed, err := c2.GetJob(ctx, job.ID)
	if err != nil {
		t.Fatalf("GetJob after restart: %v", err)
	}
	if !replayed.Recovered || replayed.State != client.StateDone {
		t.Fatalf("replayed job = state %q recovered %v, want done/true",
			replayed.State, replayed.Recovered)
	}
	if !bytes.Equal(done.Result, replayed.Result) {
		t.Fatalf("replayed result diverges:\n pre-restart: %s\npost-restart: %s",
			done.Result, replayed.Result)
	}
}
