package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// JobSpec describes one simulation job; it mirrors the POST /v1/jobs
// request body. Exactly one of Workload and Family selects what to run: a
// Table I benchmark by name, or a parameterized family instance that the
// daemon resolves to its canonical "family:<name>?<knobs>" workload name.
type JobSpec struct {
	Workload     string      `json:"workload,omitempty"`
	Family       *FamilySpec `json:"family,omitempty"`
	Mode         string      `json:"mode"` // "functional" or "timing"
	Size         int         `json:"size,omitempty"`
	Seed         int64       `json:"seed,omitempty"`
	MaxWarpInsts uint64      `json:"max_warp_insts,omitempty"`
	MaxCycles    int64       `json:"max_cycles,omitempty"`
	// TimeoutMillis bounds the job's wall time server-side (0 = none).
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// ReuseCheckpoints opts a timing job into the daemon's checkpoint store
	// when one is configured; results are byte-identical either way.
	ReuseCheckpoints bool `json:"reuse_checkpoints,omitempty"`
}

// Job states, mirroring the server's lifecycle.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// Progress is a running job's heartbeat, updated by the simulation runner
// at kernel-launch boundaries.
type Progress struct {
	Cycles       int64     `json:"cycles"`
	WarpInsts    uint64    `json:"warp_insts"`
	CyclesPerSec float64   `json:"cycles_per_sec,omitempty"`
	Updated      time.Time `json:"updated"`
}

// Job is one job snapshot. Result is left raw: its shape depends on the
// job's mode — decode it into your own struct, or use the counters
// convenience below.
type Job struct {
	ID           string    `json:"id"`
	Key          string    `json:"key"`
	State        string    `json:"state"`
	Error        string    `json:"error,omitempty"`
	CacheHit     bool      `json:"cache_hit,omitempty"`
	Created      time.Time `json:"created"`
	Started      time.Time `json:"started"`
	Finished     time.Time `json:"finished"`
	QueuedMillis int64     `json:"queued_millis"`
	WallMillis   int64     `json:"wall_millis"`
	Progress     *Progress `json:"progress,omitempty"`
	// Recovered marks a job replayed from the daemon's journal after a
	// restart rather than submitted through the current process.
	Recovered bool            `json:"recovered,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
}

// Terminal reports whether the job has reached a final state.
func (j *Job) Terminal() bool {
	switch j.State {
	case StateDone, StateFailed, StateCancelled:
		return true
	}
	return false
}

// Err folds a terminal job's outcome into an error: nil for done, a
// descriptive error for failed or cancelled.
func (j *Job) Err() error {
	switch j.State {
	case StateFailed:
		return fmt.Errorf("client: job %s failed: %s", j.ID, j.Error)
	case StateCancelled:
		return fmt.Errorf("client: job %s cancelled", j.ID)
	}
	return nil
}

// SubmitJob submits a simulation job and returns its initial snapshot —
// already terminal (with cache_hit set) when the result was cached.
func (c *Client) SubmitJob(ctx context.Context, spec JobSpec) (*Job, error) {
	var out Job
	if err := c.do(ctx, "job_submit", http.MethodPost, "/v1/jobs", nil, spec, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// GetJob fetches a job's current snapshot.
func (c *Client) GetJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, "job_get", http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob cancels a job; cancelling a finished job is a no-op returning
// its final snapshot.
func (c *Client) CancelJob(ctx context.Context, id string) (*Job, error) {
	var out Job
	if err := c.do(ctx, "job_cancel", http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// defaultPollWait is WaitJob's per-request long-poll window. Long enough
// that a typical job completes within one round trip, short enough that a
// stuck connection is noticed.
const defaultPollWait = 15 * time.Second

// WaitJob long-polls the job until it reaches a terminal state or ctx is
// done. pollWait sets the per-request wait_ms window (0 = 15s); progress
// heartbeats arrive on the intermediate snapshots, so a caller watching a
// long simulate can wrap WaitJob's ctx and poll GetJob itself.
func (c *Client) WaitJob(ctx context.Context, id string, pollWait time.Duration) (*Job, error) {
	if pollWait <= 0 {
		pollWait = defaultPollWait
	}
	q := url.Values{"wait_ms": []string{strconv.FormatInt(pollWait.Milliseconds(), 10)}}
	for {
		var out Job
		if err := c.do(ctx, "job_wait", http.MethodGet, "/v1/jobs/"+url.PathEscape(id), q, nil, &out); err != nil {
			return nil, err
		}
		if out.Terminal() {
			return &out, nil
		}
		if err := ctx.Err(); err != nil {
			return &out, err
		}
	}
}

// RunJob is submit-and-wait: it returns the job's terminal snapshot. The
// returned error covers transport and API failures only; a job that ran and
// failed comes back with State "failed" and a nil error — check Err().
func (c *Client) RunJob(ctx context.Context, spec JobSpec) (*Job, error) {
	job, err := c.SubmitJob(ctx, spec)
	if err != nil {
		return nil, err
	}
	if job.Terminal() {
		return job, nil
	}
	return c.WaitJob(ctx, job.ID, 0)
}

// Workload is one built-in benchmark listing.
type Workload struct {
	Name        string `json:"name"`
	Category    string `json:"category"`
	Description string `json:"description"`
	DataSet     string `json:"data_set"`
}

// FamilySpec selects one parameterized family instance for classify or job
// requests: a family name plus knob overrides; omitted knobs take their
// schema defaults (see Catalog.Families for schemas and ranges).
type FamilySpec struct {
	Name  string         `json:"name"`
	Knobs map[string]int `json:"knobs,omitempty"`
}

// Knob is one typed family parameter: integer-valued, bounded, optionally
// constrained to powers of two.
type Knob struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Min         int    `json:"min"`
	Max         int    `json:"max"`
	Default     int    `json:"default"`
	Pow2        bool   `json:"pow2,omitempty"`
}

// Family is one parameterized workload family listing: its knob schema and
// the canonical all-defaults instance name as a template.
type Family struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Knobs       []Knob `json:"knobs"`
	Example     string `json:"example"`
}

// Catalog is the daemon's workload catalog: the fixed Table I benchmarks
// plus the parameterized families.
type Catalog struct {
	Workloads []Workload `json:"workloads"`
	Families  []Family   `json:"families"`
}

// Workloads fetches the daemon's workload catalog — Table I benchmarks and
// parameterized families with their knob schemas.
func (c *Client) Workloads(ctx context.Context) (*Catalog, error) {
	var out Catalog
	if err := c.do(ctx, "workloads", http.MethodGet, "/v1/workloads", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks daemon liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, "health", http.MethodGet, "/healthz", nil, nil, nil)
}

// Recovery summarises the daemon's journal replay, mirroring the recovery
// block of GET /healthz. Counts are jobs except Records (journal records)
// and TruncatedBytes (torn tail dropped during replay).
type Recovery struct {
	Enabled            bool   `json:"enabled"`
	Records            uint64 `json:"records_replayed"`
	TruncatedBytes     int64  `json:"truncated_bytes"`
	DroppedSegments    int    `json:"dropped_segments"`
	Jobs               int    `json:"jobs"`
	Requeued           int    `json:"requeued"`
	CompletedFromStore int    `json:"completed_from_store"`
	ResultsMissing     int    `json:"results_missing"`
	Unrecoverable      int    `json:"unrecoverable"`
}

// HealthStatus is the full GET /healthz document. Recovery is nil on
// daemons running without a durable data dir.
type HealthStatus struct {
	Status   string    `json:"status"`
	Recovery *Recovery `json:"recovery,omitempty"`
}

// HealthStatus fetches daemon health including the journal recovery
// summary, when the daemon runs with a durable data dir.
func (c *Client) HealthStatus(ctx context.Context) (*HealthStatus, error) {
	var out HealthStatus
	if err := c.do(ctx, "health", http.MethodGet, "/healthz", nil, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
