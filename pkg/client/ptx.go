package client

import (
	"context"
	"net/http"
)

// Diagnostic is one PTX validation failure, with a 1-based source line when
// the parser can attribute one (0 = whole-program diagnostic).
type Diagnostic struct {
	Line    int    `json:"line"`
	Message string `json:"message"`
}

// PTXKernel is one accepted kernel from a /v1/ptx submission: static shape
// plus the daemon's load classification.
type PTXKernel struct {
	Name             string `json:"name"`
	Instructions     int    `json:"instructions"`
	Registers        int    `json:"registers"`
	SharedBytes      int    `json:"shared_bytes,omitempty"`
	Deterministic    int    `json:"deterministic"`
	NonDeterministic int    `json:"non_deterministic"`
	Loads            []Load `json:"loads"`
}

// PTXResult is an accepted raw-PTX submission: a content digest plus
// per-kernel validation and classification results.
type PTXResult struct {
	SHA256  string      `json:"sha256"`
	Kernels []PTXKernel `json:"kernels"`
}

// SubmitPTX validates a raw .ptx program against the daemon's PTX-subset
// grammar and classifies every global load. A malformed program surfaces as
// a 422 APIError whose Diagnostics carry the per-line failures.
func (c *Client) SubmitPTX(ctx context.Context, ptxSource string) (*PTXResult, error) {
	var out PTXResult
	err := c.do(ctx, "ptx_submit", http.MethodPost, "/v1/ptx", nil,
		struct {
			PTX string `json:"ptx"`
		}{ptxSource}, &out)
	if err != nil {
		return nil, err
	}
	return &out, nil
}
