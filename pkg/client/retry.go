package client

import (
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// backoffDelay computes the attempt'th retry delay: exponential growth from
// base, capped at max, with full jitter in [delay/2, delay] so a fleet of
// clients bounced by the same 429 does not reconverge on the server in
// lockstep.
func backoffDelay(base, max time.Duration, attempt int, j *jitterSource) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + j.between(half)
}

// parseRetryAfter understands both Retry-After forms: integer seconds and
// an HTTP date. Anything else (or an empty header) yields zero, which the
// retry loop treats as "no push-back, use your own backoff".
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// jitterSource is a mutex-guarded rand.Rand: the global rand would work,
// but a private source keeps the client's jitter independent of whatever
// seeding the embedding program does.
type jitterSource struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func newJitterSource() *jitterSource {
	return &jitterSource{rng: rand.New(rand.NewSource(time.Now().UnixNano()))}
}

// between returns a uniform duration in [0, d].
func (j *jitterSource) between(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return time.Duration(j.rng.Int63n(int64(d) + 1))
}
