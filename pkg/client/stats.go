package client

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencyBuckets are the per-op histogram bounds in seconds, log-spaced
// from 100µs (an in-process classify round trip) to 60s (a saturating
// simulate long-poll). Samples beyond the last bound land in the overflow
// bucket.
var latencyBuckets = []float64{
	0.0001, 0.0002, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05,
	0.1, 0.2, 0.5, 1, 2, 5, 10, 30, 60,
}

// opStats accumulates one operation's counters and latency distribution.
type opStats struct {
	count   atomic.Int64
	errors  atomic.Int64
	retries atomic.Int64

	mu      sync.Mutex
	buckets []int64 // len(latencyBuckets)+1; the extra slot is overflow
	sum     float64
	min     float64
	max     float64
}

func newOpStats() *opStats {
	return &opStats{buckets: make([]int64, len(latencyBuckets)+1)}
}

func (o *opStats) observe(d time.Duration, failed bool) {
	o.count.Add(1)
	if failed {
		o.errors.Add(1)
	}
	secs := d.Seconds()
	o.mu.Lock()
	defer o.mu.Unlock()
	idx := sort.SearchFloat64s(latencyBuckets, secs)
	o.buckets[idx]++
	o.sum += secs
	if o.min == 0 || secs < o.min {
		o.min = secs
	}
	if secs > o.max {
		o.max = secs
	}
}

// quantileLocked estimates the p-quantile (0 < p < 1) by linear
// interpolation within the winning bucket; the overflow bucket reports the
// last finite bound.
func (o *opStats) quantileLocked(p float64) float64 {
	total := int64(0)
	for _, n := range o.buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	seen := int64(0)
	for i, n := range o.buckets {
		if float64(seen+n) < rank {
			seen += n
			continue
		}
		if i >= len(latencyBuckets) {
			return latencyBuckets[len(latencyBuckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = latencyBuckets[i-1]
		}
		hi := latencyBuckets[i]
		if n == 0 {
			return hi
		}
		frac := (rank - float64(seen)) / float64(n)
		return lo + frac*(hi-lo)
	}
	return latencyBuckets[len(latencyBuckets)-1]
}

// OpSnapshot is one operation's accumulated statistics.
type OpSnapshot struct {
	// Count is completed operations (each counted once, however many
	// attempts it took); Errors those that ultimately failed; Retries the
	// extra attempts spent across all operations.
	Count   int64
	Errors  int64
	Retries int64
	// Latency summary in milliseconds. P50/P99 are histogram estimates.
	MinMillis  float64
	MeanMillis float64
	MaxMillis  float64
	P50Millis  float64
	P99Millis  float64
}

// StatsSnapshot maps operation name ("classify", "classify_batch",
// "job_submit", "job_wait", ...) to its statistics.
type StatsSnapshot map[string]OpSnapshot

// statsSet owns every operation's opStats. Ops self-register on first use.
type statsSet struct {
	mu  sync.Mutex
	ops map[string]*opStats
}

func newStatsSet() *statsSet {
	return &statsSet{ops: map[string]*opStats{}}
}

func (s *statsSet) op(name string) *opStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.ops[name]
	if !ok {
		o = newOpStats()
		s.ops[name] = o
	}
	return o
}

func (s *statsSet) observe(name string, d time.Duration, err error) {
	s.op(name).observe(d, err != nil)
}

func (s *statsSet) retry(name string) {
	s.op(name).retries.Add(1)
}

func (s *statsSet) snapshot() StatsSnapshot {
	s.mu.Lock()
	names := make([]string, 0, len(s.ops))
	for name := range s.ops {
		names = append(names, name)
	}
	s.mu.Unlock()
	out := make(StatsSnapshot, len(names))
	for _, name := range names {
		o := s.op(name)
		snap := OpSnapshot{
			Count:   o.count.Load(),
			Errors:  o.errors.Load(),
			Retries: o.retries.Load(),
		}
		o.mu.Lock()
		if n := snap.Count; n > 0 {
			snap.MeanMillis = o.sum / float64(n) * 1e3
		}
		snap.MinMillis = o.min * 1e3
		snap.MaxMillis = o.max * 1e3
		snap.P50Millis = o.quantileLocked(0.50) * 1e3
		snap.P99Millis = o.quantileLocked(0.99) * 1e3
		o.mu.Unlock()
		out[name] = snap
	}
	return out
}
